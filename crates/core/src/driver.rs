//! The execution driver: runs one operation according to the configured
//! strategy, handling attempt budgets, waiting policies, path transitions
//! and statistics (paper Section 5).

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use threepath_htm::{codes, Abort, Backoff, HtmRuntime, Txn};
use threepath_llxscx::{ScxEngine, ScxThread};

use crate::access::TxMem;
use crate::admission::{AdmissionProbe, AdmissionProbeConfig};
use crate::budget::{AdaptiveBudgets, BudgetConfig, OpTally};
use crate::effects::Effects;
use crate::readpath::{ReadBound, ReadBoundConfig, DEFAULT_READ_ATTEMPTS};
use crate::stats::{PathKind, PathStats};
use crate::strategy::{PathLimits, Strategy};
use crate::snzi::Snzi;
use crate::sync::{AdmissionGate, FallbackCount, Indicator, TleLock};
use crate::template::TxMode;

/// The strategies an adaptive context may swap between at runtime (see
/// [`ExecCtx::set_strategy`]).
pub const ADAPTIVE_STRATEGIES: [Strategy; 2] = [Strategy::Tle, Strategy::ThreePath];

/// Error from [`ExecCtx::set_strategy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategySwapError {
    /// The context was not built with [`ExecCtx::with_adaptive`]; its
    /// strategy is fixed for its lifetime.
    NotAdaptive,
    /// The requested strategy is outside [`ADAPTIVE_STRATEGIES`] — the
    /// blended subscription discipline only covers TLE and 3-path.
    Unsupported(Strategy),
}

impl fmt::Display for StrategySwapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategySwapError::NotAdaptive => {
                f.write_str("strategy is fixed: context not built with_adaptive")
            }
            StrategySwapError::Unsupported(s) => {
                write!(f, "strategy `{s}` cannot be swapped in at runtime")
            }
        }
    }
}

impl std::error::Error for StrategySwapError {}

/// Per-structure execution context: the strategy, attempt budgets, the
/// fallback counter `F` and the TLE lock.
///
/// # Adaptive contexts
///
/// A context built [`with_adaptive`](Self::with_adaptive) may have its
/// strategy swapped **at runtime** between [`Strategy::Tle`] and
/// [`Strategy::ThreePath`] while operations are in flight on other
/// threads. Safety does not rely on quiescing: a *blended* discipline
/// keeps every interleaving of TLE-mode and 3-path-mode operations
/// correct, whichever strategy each in-flight operation read:
///
/// * every HTM transaction — fast path **and** middle path — subscribes
///   to both the TLE lock and the fallback indicator `F`, so no
///   transaction can commit while the lock is held or the lock-free
///   fallback is active;
/// * the TLE fallback, after acquiring the lock, waits for `F` to drain
///   before running sequential code (lock-free template operations never
///   overlap exclusive sequential access);
/// * the lock-free fallback arrives on `F` only while the lock is free,
///   re-checking after arrival and backing off (departing) if the lock
///   was concurrently acquired. The lock holder waits only for `F`, and
///   `F` holders never wait once arrived, so the two waits cannot cycle.
///
/// The cost is one extra transactional read per fast/middle attempt and a
/// lock check on fallback entry — paid only by adaptive contexts;
/// fixed-strategy contexts run exactly the paper's per-strategy protocol.
pub struct ExecCtx {
    rt: Arc<HtmRuntime>,
    strategy: AtomicU8,
    adaptive: bool,
    /// Batch entry point enabled: every transaction adopts the blended
    /// subscription discipline (see [`Self::with_batching`]), so a batch's
    /// serialized section excludes all concurrent transactional work.
    batched: bool,
    limits_override: Option<PathLimits>,
    budgets: Option<AdaptiveBudgets>,
    read_bound: Option<ReadBound>,
    admission: Option<AdmissionGate>,
    admission_probe: Option<AdmissionProbe>,
    f: Indicator,
    lock: TleLock,
}

impl ExecCtx {
    /// Creates a context with the paper's attempt budgets for `strategy`.
    pub fn new(rt: Arc<HtmRuntime>, strategy: Strategy) -> Self {
        ExecCtx {
            rt,
            strategy: AtomicU8::new(strategy.code()),
            adaptive: false,
            batched: false,
            limits_override: None,
            budgets: None,
            read_bound: None,
            admission: None,
            admission_probe: None,
            f: Indicator::Counter(FallbackCount::new()),
            lock: TleLock::new(),
        }
    }

    /// Replaces the fallback counter `F` with a SNZI (the scalable
    /// alternative the paper mentions in Section 5).
    pub fn with_snzi(mut self) -> Self {
        self.f = Indicator::Snzi(Snzi::new());
        self
    }

    /// Overrides the attempt budgets with a fixed value. Takes precedence
    /// over [`Self::with_adaptive_budgets`].
    pub fn with_limits(mut self, limits: PathLimits) -> Self {
        self.limits_override = Some(limits);
        self
    }

    /// Enables adaptive attempt budgets: the fast/middle budgets re-scale
    /// per epoch from the observed abort mix, anchored at the paper's
    /// per-strategy values (see [`AdaptiveBudgets`]). A fixed
    /// [`Self::with_limits`] override wins over adaptation.
    ///
    /// # Panics
    ///
    /// Panics on degenerate tuning (see [`AdaptiveBudgets::new`]).
    pub fn with_adaptive_budgets(mut self, cfg: BudgetConfig) -> Self {
        self.budgets = Some(AdaptiveBudgets::new(cfg, self.strategy()));
        self
    }

    /// The adaptive budget state, when enabled.
    pub fn budgets(&self) -> Option<&AdaptiveBudgets> {
        self.budgets.as_ref()
    }

    /// Enables the probing read-escalation bound: optimistic reads and
    /// scans get their validation-attempt budget from a contention
    /// manager probing [`ReadBoundConfig::ladder`] instead of the fixed
    /// [`DEFAULT_READ_ATTEMPTS`]. Only contended reads feed it; the calm
    /// read path stays zero-synchronization.
    ///
    /// # Panics
    ///
    /// Panics on degenerate tuning (see [`ReadBoundConfig::validate`]).
    pub fn with_read_probe(mut self, cfg: ReadBoundConfig) -> Self {
        self.read_bound = Some(ReadBound::new(cfg));
        self
    }

    /// The validation-attempt bound optimistic reads and scans should
    /// pass to [`Self::run_read_validated`] / [`Self::run_scan`]: the
    /// probing controller's current choice, or
    /// [`DEFAULT_READ_ATTEMPTS`] when no read probe is configured.
    pub fn read_attempts(&self) -> u32 {
        match &self.read_bound {
            Some(rb) => rb.bound(),
            None => DEFAULT_READ_ATTEMPTS,
        }
    }

    /// The probing read-bound state, when enabled.
    pub(crate) fn read_bound(&self) -> Option<&ReadBound> {
        self.read_bound.as_ref()
    }

    /// Decision epochs the read-bound controller has completed (0 when
    /// no read probe is configured; diagnostics).
    pub fn read_probe_epochs(&self) -> u64 {
        self.read_bound.as_ref().map_or(0, |rb| rb.epochs())
    }

    /// Enables HTM admission control: while the serialized fallback is
    /// busy (the TLE lock held, or `F` active under 3-path), at most
    /// `cap` threads keep making HTM attempts against it; overflow
    /// threads queue on the gate's ready lane and take the serialized
    /// path directly (see [`AdmissionGate`]). Applies to the
    /// [`Strategy::Tle`] and [`Strategy::ThreePath`] protocols (and both
    /// halves of an adaptive context); the other strategies never gate.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_admission(mut self, cap: u32) -> Self {
        self.admission = Some(AdmissionGate::new(cap));
        self
    }

    /// The admission gate, when enabled.
    pub fn admission(&self) -> Option<&AdmissionGate> {
        self.admission.as_ref()
    }

    /// Enables HTM admission control with a *probing* cap: instead of a
    /// fixed window width, a contention manager probes
    /// [`AdmissionProbeConfig::ladder`] on live gated traffic and keeps
    /// the cap that completes the most gated encounters per attempt (see
    /// [`crate::AdmissionProbeConfig`]). The gate starts at the ladder's
    /// widest cap. Takes precedence over a fixed
    /// [`Self::with_admission`] cap.
    ///
    /// # Panics
    ///
    /// Panics on degenerate tuning (see
    /// [`AdmissionProbeConfig::validate`]).
    pub fn with_admission_probe(mut self, cfg: AdmissionProbeConfig) -> Self {
        let probe = AdmissionProbe::new(cfg);
        self.admission = Some(AdmissionGate::new(probe.initial_cap()));
        self.admission_probe = Some(probe);
        self
    }

    /// Decision epochs the admission-cap controller has completed (0
    /// when no admission probe is configured; diagnostics).
    pub fn admission_probe_epochs(&self) -> u64 {
        self.admission_probe.as_ref().map_or(0, |p| p.epochs())
    }

    /// Enables the batch entry point ([`Self::run_batch`]): coalesced
    /// operation plans may commit in a single fast-path transaction or
    /// one serialized critical section. Correctness of the serialized
    /// section relies on the blended subscription discipline (see the
    /// type-level docs), so — like [`Self::with_adaptive`] — every
    /// transaction on a batched context subscribes to both the TLE lock
    /// and `F`, and the lock holder drains `F` before touching the tree.
    ///
    /// # Panics
    ///
    /// Panics if the current strategy is outside [`ADAPTIVE_STRATEGIES`]
    /// — the blended discipline (and hence batching) only covers TLE and
    /// 3-path.
    pub fn with_batching(mut self) -> Self {
        assert!(
            ADAPTIVE_STRATEGIES.contains(&self.strategy()),
            "batched contexts require the TLE or 3-path strategy"
        );
        self.batched = true;
        self
    }

    /// Whether this context accepts batched plans.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    /// Whether the blended subscription discipline is in force: adaptive
    /// contexts need it for runtime strategy swaps, batched contexts for
    /// the batch serialized section (all concurrent transactions must
    /// subscribe to the lock it runs under).
    fn blended(&self) -> bool {
        self.adaptive || self.batched
    }

    /// Feeds one gated encounter to the probing admission cap (no-op
    /// without an admission probe).
    fn note_admission(&self, attempts: u64, overflowed: bool) {
        if let (Some(probe), Some(gate)) = (&self.admission_probe, &self.admission) {
            probe.note(gate, attempts, overflowed);
        }
    }

    /// Enables runtime strategy swapping (see the type-level docs for the
    /// blended safety discipline).
    ///
    /// # Panics
    ///
    /// Panics if the current strategy is outside [`ADAPTIVE_STRATEGIES`].
    pub fn with_adaptive(mut self) -> Self {
        assert!(
            ADAPTIVE_STRATEGIES.contains(&self.strategy()),
            "adaptive contexts must start on TLE or 3-path"
        );
        self.adaptive = true;
        self
    }

    /// Whether this context supports runtime strategy swaps.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Swaps the execution strategy at runtime. Only valid on a context
    /// built [`with_adaptive`](Self::with_adaptive), and only between the
    /// strategies in [`ADAPTIVE_STRATEGIES`]; in-flight operations finish
    /// under whichever strategy they read at entry, which the blended
    /// subscription discipline makes safe.
    pub fn set_strategy(&self, strategy: Strategy) -> Result<(), StrategySwapError> {
        if !self.adaptive {
            return Err(StrategySwapError::NotAdaptive);
        }
        if !ADAPTIVE_STRATEGIES.contains(&strategy) {
            return Err(StrategySwapError::Unsupported(strategy));
        }
        self.strategy.store(strategy.code(), Ordering::Release);
        // The old strategy's abort mix says nothing about the new one's
        // budgets: re-anchor at the paper values.
        if let Some(b) = &self.budgets {
            b.reset(strategy);
        }
        Ok(())
    }

    /// The current strategy (the configured one, or the latest runtime
    /// swap on an adaptive context).
    pub fn strategy(&self) -> Strategy {
        Strategy::from_code(self.strategy.load(Ordering::Acquire))
            .expect("strategy atomic holds a valid code")
    }

    /// The attempt budgets in effect: the explicit override if one was
    /// set, else the adaptive budgets' current value, else the paper's
    /// budgets for the current strategy.
    pub fn limits(&self) -> PathLimits {
        self.effective_limits(self.strategy())
    }

    fn effective_limits(&self, strategy: Strategy) -> PathLimits {
        if let Some(l) = self.limits_override {
            return l;
        }
        if let Some(b) = &self.budgets {
            return b.current();
        }
        PathLimits::for_strategy(strategy)
    }

    /// The HTM runtime.
    pub fn runtime(&self) -> &Arc<HtmRuntime> {
        &self.rt
    }

    /// The fallback-path presence indicator (`F` or a SNZI).
    pub fn fallback_indicator(&self) -> &Indicator {
        &self.f
    }

    /// The TLE global lock.
    pub fn tle_lock(&self) -> &TleLock {
        &self.lock
    }

    /// The fast path's subscription check, executed at the start of every
    /// fast-path transaction: TLE subscribes to the global lock; 2-path
    /// non-con and 3-path subscribe to `F`. Adaptive and batched contexts
    /// subscribe to **both**, so the check is correct whichever strategy
    /// is current and no transaction commits over a batch's serialized
    /// section.
    pub fn subscribe(&self, tx: &mut Txn<'_>) -> Result<(), Abort> {
        if self.blended() {
            if tx.read(self.lock.cell())? != 0 {
                return Err(tx.abort(codes::LOCK_HELD));
            }
            let raw = tx.read(self.f.cell())?;
            if self.f.raw_is_active(raw) {
                return Err(tx.abort(codes::F_NONZERO));
            }
            return Ok(());
        }
        match self.strategy() {
            Strategy::Tle => {
                if tx.read(self.lock.cell())? != 0 {
                    return Err(tx.abort(codes::LOCK_HELD));
                }
            }
            Strategy::TwoPathNonCon | Strategy::ThreePath => {
                let raw = tx.read(self.f.cell())?;
                if self.f.raw_is_active(raw) {
                    return Err(tx.abort(codes::F_NONZERO));
                }
            }
            Strategy::NonHtm | Strategy::TwoPathCon => {}
        }
        Ok(())
    }

    /// One fast-path attempt: sequential code in a transaction, preceded by
    /// the strategy's subscription check. Deferred retirements apply on
    /// commit.
    pub fn attempt_seq<T>(
        &self,
        eng: &ScxEngine,
        th: &mut ScxThread,
        body: impl FnOnce(&mut TxMem<'_, '_>) -> Result<T, Abort>,
    ) -> Result<T, Abort> {
        th.pinned(|th| {
            let mut eff = Effects::new();
            let reclaim = &th.reclaim;
            let res = self.rt.attempt(&mut th.htm, |tx| {
                self.subscribe(tx)?;
                let mut mem = TxMem::new(tx, &mut eff, reclaim);
                body(&mut mem)
            });
            if res.is_ok() {
                eff.commit(eng, th);
            } else {
                // Undo: tracked allocations return to the thread's pool
                // (the aborted transaction published nothing).
                eff.abort_cleanup(&th.reclaim);
            }
            res
        })
    }

    /// One instrumented-template attempt (the 2-path-con fast path and the
    /// 3-path middle path): the whole template operation inside one
    /// transaction using the HTM LLX/SCX. No subscription — this path runs
    /// concurrently with the fallback — except on adaptive or batched
    /// contexts, where the transaction subscribes to the TLE lock so it
    /// can never commit over an exclusive sequential section (a TLE-mode
    /// fallback, or a batch's locked lane).
    pub fn attempt_template<T>(
        &self,
        eng: &ScxEngine,
        th: &mut ScxThread,
        body: impl FnOnce(&mut TxMode<'_, '_>) -> Result<T, Abort>,
    ) -> Result<T, Abort> {
        th.pinned(|th| {
            let tseq = th.next_tseq();
            let mut eff = Effects::new();
            let reclaim = &th.reclaim;
            let res = self.rt.attempt(&mut th.htm, |tx| {
                if self.blended() && tx.read(self.lock.cell())? != 0 {
                    return Err(tx.abort(codes::LOCK_HELD));
                }
                let mut mode = TxMode::new(eng, tx, tseq, &mut eff, reclaim);
                body(&mut mode)
            });
            if res.is_ok() {
                eff.commit(eng, th);
            } else {
                // Undo: tracked allocations return to the thread's pool
                // (the aborted transaction published nothing).
                eff.abort_cleanup(&th.reclaim);
            }
            res
        })
    }

    /// Runs one operation to completion under the configured strategy.
    ///
    /// * `fast` — one fast-path attempt (typically built with
    ///   [`Self::attempt_seq`]);
    /// * `middle` — one instrumented attempt (built with
    ///   [`Self::attempt_template`]); also serves as the 2-path-con fast
    ///   path;
    /// * `fallback` — the lock-free template operation (loops internally
    ///   until it succeeds);
    /// * `seq_locked` — the sequential operation with direct memory access,
    ///   used only by TLE under the global lock.
    ///
    /// Returns the result and the path the operation completed on.
    pub fn run_op<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        fast: impl FnMut(&mut ScxThread) -> Result<T, Abort>,
        middle: impl FnMut(&mut ScxThread) -> Result<T, Abort>,
        fallback: impl FnMut(&mut ScxThread) -> T,
        seq_locked: impl FnMut(&mut ScxThread) -> T,
    ) -> (T, PathKind) {
        // One strategy read per operation: an adaptive swap lands between
        // operations, never in the middle of one. Budgets likewise.
        let strategy = self.strategy();
        let limits = self.effective_limits(strategy);
        let mut tally = OpTally::default();
        let out = self.run_paths(
            th, stats, &mut tally, strategy, limits, fast, middle, fallback, seq_locked,
        );
        // A fixed override wins over the adaptive budgets, so feeding
        // them would be shared-RMW work (and phantom decisions) that
        // nothing ever reads.
        if self.limits_override.is_none() {
            if let Some(b) = &self.budgets {
                b.record(strategy, &tally);
            }
        }
        out
    }

    /// Runs one operation like [`Self::run_op`], but **without** feeding
    /// its attempt tally into the adaptive budgets.
    ///
    /// This is the entry point for read/scan *escalations*: an optimistic
    /// read or scan that exhausted its validation attempts re-enters the
    /// transactional machinery here. It still runs under the budgets'
    /// current (possibly collapsed) attempt limits — a storm-shrunk budget
    /// applies to escalated work too — but its aborts are driven by
    /// validation races, not the HTM abort environment the budgets model,
    /// so feeding them back would inflate the storm window and hold the
    /// budgets shrunk after the updates went calm.
    pub fn run_op_escalated<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        fast: impl FnMut(&mut ScxThread) -> Result<T, Abort>,
        middle: impl FnMut(&mut ScxThread) -> Result<T, Abort>,
        fallback: impl FnMut(&mut ScxThread) -> T,
        seq_locked: impl FnMut(&mut ScxThread) -> T,
    ) -> (T, PathKind) {
        let strategy = self.strategy();
        let limits = self.effective_limits(strategy);
        let mut tally = OpTally::default();
        self.run_paths(
            th, stats, &mut tally, strategy, limits, fast, middle, fallback, seq_locked,
        )
    }

    /// Runs one coalesced batch of `ops` operations to completion: up to
    /// the fast budget of `fast` attempts — each a **single** transaction
    /// whose body applies the whole plan — then one serialized
    /// `seq_locked` section under the TLE lock. No middle path: a batch
    /// either commits wholesale in HTM or runs exclusively (the
    /// instrumented template brings per-operation help/abort machinery
    /// that defeats the amortization batching exists for).
    ///
    /// Requires a context built [`with_batching`](Self::with_batching) on
    /// TLE or 3-path: the blended subscription discipline is what makes
    /// the serialized section safe against concurrent single-operation
    /// traffic on every path. The admission gate (when configured)
    /// applies exactly as in [`Self::run_op`], except a refused batch
    /// *enqueues* on the serialized lane via the ready queue instead of
    /// spinning on HTM.
    ///
    /// Stats: the batch lands `ops` completions on the finishing path in
    /// one call, plus one batch-lane record — so
    /// [`PathStats::batch_txns`] counts exactly one transaction (or
    /// section) per executed batch, the basis of the steady-state claim
    /// that K calm same-shard updates commit in ≤ ceil(K / batch_cap)
    /// transactions.
    ///
    /// # Panics
    ///
    /// Panics if the context was not built with batching, or the current
    /// strategy is outside [`ADAPTIVE_STRATEGIES`].
    pub fn run_batch<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        ops: u64,
        mut fast: impl FnMut(&mut ScxThread) -> Result<T, Abort>,
        mut seq_locked: impl FnMut(&mut ScxThread) -> T,
    ) -> (T, PathKind) {
        let strategy = self.strategy();
        assert!(
            self.batched && ADAPTIVE_STRATEGIES.contains(&strategy),
            "run_batch requires a with_batching context on TLE or 3-path"
        );
        let limits = self.effective_limits(strategy);
        let rt = &*self.rt;
        // Admission: when the serialized path is busy and the window is
        // full, the batch enqueues on the ready lane (which has priority
        // on the lock) instead of spinning — the "refused entrants
        // enqueue" integration with the PR 7 gate.
        let mut in_window = false;
        if let Some(gate) = &self.admission {
            let busy = self.lock.is_held(rt)
                || (strategy == Strategy::ThreePath && self.f.is_active(rt));
            if busy {
                if gate.try_enter() {
                    in_window = true;
                } else {
                    stats.record_admission_overflow();
                    self.note_admission(0, true);
                    gate.ready_arrive();
                    let v = self.batch_locked_section(th, stats, ops, &mut seq_locked);
                    gate.ready_depart();
                    return (v, PathKind::Fallback);
                }
            }
        }
        let mut gated_attempts = 0u64;
        let mut attempts = 0;
        while attempts < limits.fast {
            attempts += 1;
            if in_window {
                gated_attempts += 1;
            }
            if strategy == Strategy::Tle {
                // TLE semantics: wait out the lock before each attempt.
                self.wait_while(|| self.lock.is_held(rt));
            }
            match fast(th) {
                Ok(v) => {
                    if in_window {
                        self.gate_exit();
                        self.note_admission(gated_attempts, false);
                    }
                    stats.record_commit(PathKind::Fast);
                    stats.record_completed_n(PathKind::Fast, ops);
                    stats.record_batch(ops, 1);
                    return (v, PathKind::Fast);
                }
                Err(a) => {
                    stats.record_abort(PathKind::Fast, &a);
                    // A capacity abort is deterministic for a fixed plan —
                    // the footprint does not shrink on retry — so the
                    // batch escalates to the serialized lane at once
                    // instead of burning the budget on doomed
                    // re-executions of the whole plan.
                    if a.code() == threepath_htm::AbortCode::Capacity {
                        break;
                    }
                    // A subscription abort under 3-path means serialized
                    // work is active; further attempts are doomed, so the
                    // batch escalates to the lock queue at once. (TLE
                    // waits the lock out above instead.)
                    if strategy == Strategy::ThreePath
                        && matches!(
                            a.user_code(),
                            Some(codes::F_NONZERO) | Some(codes::LOCK_HELD)
                        )
                    {
                        break;
                    }
                }
            }
        }
        if in_window {
            self.gate_exit();
            self.note_admission(gated_attempts, false);
        }
        let v = self.batch_locked_section(th, stats, ops, &mut seq_locked);
        (v, PathKind::Fallback)
    }

    /// The batch's serialized lane: one exclusive section under the TLE
    /// lock (draining `F` first — blended discipline), during which the
    /// caller's closure may also flat-combine further queued batches.
    fn batch_locked_section<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        ops: u64,
        seq_locked: &mut impl FnMut(&mut ScxThread) -> T,
    ) -> T {
        self.acquire_tle_lock();
        let v = seq_locked(th);
        self.lock.release(&self.rt);
        stats.record_completed_n(PathKind::Fallback, ops);
        stats.record_batch(ops, 1);
        v
    }

    /// The per-strategy path protocol for one operation (see
    /// [`Self::run_op`]), tallying effective attempts for the adaptive
    /// budgets.
    #[allow(clippy::too_many_arguments)]
    fn run_paths<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        tally: &mut OpTally,
        strategy: Strategy,
        limits: PathLimits,
        mut fast: impl FnMut(&mut ScxThread) -> Result<T, Abort>,
        mut middle: impl FnMut(&mut ScxThread) -> Result<T, Abort>,
        mut fallback: impl FnMut(&mut ScxThread) -> T,
        mut seq_locked: impl FnMut(&mut ScxThread) -> T,
    ) -> (T, PathKind) {
        let rt = &*self.rt;
        match strategy {
            Strategy::NonHtm => {
                let v = fallback(th);
                stats.record_completed(PathKind::Fallback);
                (v, PathKind::Fallback)
            }
            Strategy::Tle => {
                // Admission control: while the lock is held, only `cap`
                // threads may keep waiting-and-attempting against its
                // release; the overflow queues on the ready lane and
                // takes the lock directly, so a storm drains through the
                // serialized path instead of re-colliding on every
                // release.
                let mut in_window = false;
                if let Some(gate) = &self.admission {
                    if self.lock.is_held(rt) {
                        if gate.try_enter() {
                            in_window = true;
                        } else {
                            stats.record_admission_overflow();
                            self.note_admission(0, true);
                            gate.ready_arrive();
                            self.acquire_tle_lock();
                            let v = seq_locked(th);
                            self.lock.release(rt);
                            gate.ready_depart();
                            stats.record_completed(PathKind::Fallback);
                            return (v, PathKind::Fallback);
                        }
                    }
                }
                let mut gated_attempts = 0u64;
                for _ in 0..limits.fast {
                    // Wait for the lock to be free before each attempt
                    // (otherwise the attempt is wasted work).
                    self.wait_while(|| self.lock.is_held(rt));
                    if in_window {
                        gated_attempts += 1;
                    }
                    match fast(th) {
                        Ok(v) => {
                            if in_window {
                                self.gate_exit();
                                self.note_admission(gated_attempts, false);
                            }
                            tally.fast_commit();
                            stats.record_commit(PathKind::Fast);
                            stats.record_completed(PathKind::Fast);
                            return (v, PathKind::Fast);
                        }
                        Err(a) => {
                            tally.fast_abort(a.code());
                            stats.record_abort(PathKind::Fast, &a);
                            // Blended contexts also subscribe to F; while
                            // the lock-free fallback is active, retrying is
                            // wasted work — escalate to the lock (which
                            // waits for F to drain) immediately.
                            if self.blended() && a.user_code() == Some(codes::F_NONZERO) {
                                break;
                            }
                        }
                    }
                }
                if in_window {
                    self.gate_exit();
                    self.note_admission(gated_attempts, false);
                }
                self.acquire_tle_lock();
                let v = seq_locked(th);
                self.lock.release(rt);
                stats.record_completed(PathKind::Fallback);
                (v, PathKind::Fallback)
            }
            Strategy::TwoPathCon => {
                // The 2-path-con fast path *is* the instrumented template
                // transaction; it runs concurrently with the fallback.
                for _ in 0..limits.fast {
                    match middle(th) {
                        Ok(v) => {
                            tally.fast_commit();
                            stats.record_commit(PathKind::Fast);
                            stats.record_completed(PathKind::Fast);
                            return (v, PathKind::Fast);
                        }
                        Err(a) => {
                            tally.fast_abort(a.code());
                            stats.record_abort(PathKind::Fast, &a);
                        }
                    }
                }
                let v = fallback(th);
                stats.record_completed(PathKind::Fallback);
                (v, PathKind::Fallback)
            }
            Strategy::TwoPathNonCon => {
                for _ in 0..limits.fast {
                    // Wait for the fallback path to drain before each
                    // attempt — this is precisely the waiting the 3-path
                    // algorithm eliminates.
                    self.wait_while(|| self.f.is_active(rt));
                    match fast(th) {
                        Ok(v) => {
                            tally.fast_commit();
                            stats.record_commit(PathKind::Fast);
                            stats.record_completed(PathKind::Fast);
                            return (v, PathKind::Fast);
                        }
                        Err(a) => {
                            tally.fast_abort(a.code());
                            stats.record_abort(PathKind::Fast, &a);
                        }
                    }
                }
                self.f.arrive(rt, th.id().0);
                let v = fallback(th);
                self.f.depart(rt, th.id().0);
                stats.record_completed(PathKind::Fallback);
                (v, PathKind::Fallback)
            }
            Strategy::ThreePath => {
                // Admission control: while the lock-free fallback is
                // active, every fast/middle attempt is doomed to abort
                // against `F`; only `cap` threads keep attempting, the
                // overflow joins the fallback directly (queued progress
                // — the lock-free path always completes).
                let mut in_window = false;
                if let Some(gate) = &self.admission {
                    if self.f.is_active(rt) {
                        if gate.try_enter() {
                            in_window = true;
                        } else {
                            stats.record_admission_overflow();
                            self.note_admission(0, true);
                            gate.ready_arrive();
                            self.arrive_on_f(th.id().0);
                            let v = fallback(th);
                            self.f.depart(rt, th.id().0);
                            gate.ready_depart();
                            stats.record_completed(PathKind::Fallback);
                            return (v, PathKind::Fallback);
                        }
                    }
                }
                // Fast path: never waits; moves on early when it observes
                // an operation on the fallback path.
                let mut gated_attempts = 0u64;
                let mut attempts = 0;
                while attempts < limits.fast {
                    attempts += 1;
                    if in_window {
                        gated_attempts += 1;
                    }
                    match fast(th) {
                        Ok(v) => {
                            if in_window {
                                self.gate_exit();
                                self.note_admission(gated_attempts, false);
                            }
                            tally.fast_commit();
                            stats.record_commit(PathKind::Fast);
                            stats.record_completed(PathKind::Fast);
                            return (v, PathKind::Fast);
                        }
                        Err(a) => {
                            tally.fast_abort(a.code());
                            stats.record_abort(PathKind::Fast, &a);
                            if a.user_code() == Some(codes::F_NONZERO) {
                                break;
                            }
                        }
                    }
                }
                // Middle path: concurrent with both other paths.
                for _ in 0..limits.middle {
                    if in_window {
                        gated_attempts += 1;
                    }
                    match middle(th) {
                        Ok(v) => {
                            if in_window {
                                self.gate_exit();
                                self.note_admission(gated_attempts, false);
                            }
                            tally.middle_commit();
                            stats.record_commit(PathKind::Middle);
                            stats.record_completed(PathKind::Middle);
                            return (v, PathKind::Middle);
                        }
                        Err(a) => {
                            tally.middle_abort(a.code());
                            stats.record_abort(PathKind::Middle, &a);
                        }
                    }
                }
                if in_window {
                    // Leave the HTM window before parking on F: a thread
                    // on the fallback no longer attempts HTM.
                    self.gate_exit();
                    self.note_admission(gated_attempts, false);
                }
                self.arrive_on_f(th.id().0);
                let v = fallback(th);
                self.f.depart(rt, th.id().0);
                stats.record_completed(PathKind::Fallback);
                (v, PathKind::Fallback)
            }
        }
    }

    /// Acquires the TLE lock for exclusive sequential access, honoring
    /// the adaptive blended discipline (drain `F` before touching the
    /// tree — see [`Strategy::Tle`] in [`Self::run_paths`]).
    fn acquire_tle_lock(&self) {
        let rt = &*self.rt;
        self.lock.acquire(rt);
        if self.blended() {
            // Blended discipline: lock-free fallback operations
            // admitted under a 3-path read must drain before the
            // exclusive sequential section may touch the tree.
            // They never wait once arrived, so F drains; arrivals
            // racing the acquisition observe the lock and back off.
            // The SeqCst fence pairs with the one after F-arrival:
            // of the two store→fence→load sequences, at least one
            // side must observe the other's store.
            std::sync::atomic::fence(Ordering::SeqCst);
            self.wait_while(|| self.f.is_active(rt));
        }
    }

    /// Arrives on the fallback indicator `F`, honoring the adaptive
    /// blended discipline (arrive only while the TLE lock is free).
    fn arrive_on_f(&self, tid: u16) {
        let rt = &*self.rt;
        if self.blended() {
            // Blended discipline: arrive on F only while the TLE
            // lock is free. The re-check after arrival closes the
            // race with a concurrent acquisition — exactly one of
            // the two (this arrival, the lock holder's F check)
            // observes the other, because the arrival is a direct
            // RMW ordered before the lock load.
            loop {
                self.wait_while(|| self.lock.is_held(rt));
                self.f.arrive(rt, tid);
                std::sync::atomic::fence(Ordering::SeqCst);
                if !self.lock.is_held(rt) {
                    break;
                }
                self.f.depart(rt, tid);
            }
        } else {
            self.f.arrive(rt, tid);
        }
    }

    /// Leaves the admission window (the gate is necessarily configured
    /// when this is called).
    fn gate_exit(&self) {
        if let Some(gate) = &self.admission {
            gate.exit();
        }
    }

    /// One bounded attempt to observe the serialized machinery quiet: the
    /// fallback indicator `F` inactive and the TLE lock free, read in that
    /// order within one pass. Used by the snapshot cut (see
    /// `crate::snapshot`): an operation that holds `F` (or the lock)
    /// across the whole observation makes it fail, so a success bounds
    /// every non-transactional operation's span to one side of the
    /// observation instant. Returns whether quiet was observed within
    /// `spins` probes.
    pub(crate) fn observe_quiet(&self, spins: u32) -> bool {
        let rt = &*self.rt;
        for i in 0..spins {
            if !self.f.is_active(rt) && !self.lock.is_held(rt) {
                return true;
            }
            if i % 64 == 63 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        false
    }

    fn wait_while(&self, cond: impl Fn() -> bool) {
        if !cond() {
            return;
        }
        // Capped exponential backoff with jitter: lockstep re-probing by
        // every waiter turns one blocked operation into a probe storm on
        // the lock/F cache line; jittered windows spread the probes out.
        // The seed mixes a stack-local address so concurrent waiters on
        // the same context draw *different* jitter sequences.
        let local = 0u8;
        let mut backoff = Backoff::new(self as *const _ as u64 ^ (&local as *const u8 as u64));
        while cond() {
            backoff.wait();
        }
    }
}

impl std::fmt::Debug for ExecCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtx")
            .field("strategy", &self.strategy())
            .field("limits", &self.limits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use threepath_htm::{AbortCode, HtmConfig};
    use threepath_reclaim::{Domain, ReclaimMode};

    fn setup(strategy: Strategy) -> (ExecCtx, ScxEngine) {
        let rt = Arc::new(HtmRuntime::new(HtmConfig::default()));
        let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
        let eng = ScxEngine::new(rt.clone(), domain);
        (ExecCtx::new(rt, strategy), eng)
    }

    #[test]
    fn non_htm_goes_straight_to_fallback() {
        let (exec, eng) = setup(Strategy::NonHtm);
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let fast_calls = Cell::new(0);
        let (v, path) = exec.run_op(
            &mut th,
            &mut stats,
            |_| {
                fast_calls.set(fast_calls.get() + 1);
                Err(Abort::new(AbortCode::Conflict))
            },
            |_| Err(Abort::new(AbortCode::Conflict)),
            |_| 42,
            |_| 0,
        );
        assert_eq!((v, path), (42, PathKind::Fallback));
        assert_eq!(fast_calls.get(), 0);
        assert_eq!(stats.completed(PathKind::Fallback), 1);
    }

    #[test]
    fn three_path_escalates_through_budgets() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let fast_calls = Cell::new(0u32);
        let middle_calls = Cell::new(0u32);
        let (v, path) = exec.run_op(
            &mut th,
            &mut stats,
            |_| {
                fast_calls.set(fast_calls.get() + 1);
                Err(Abort::new(AbortCode::Conflict))
            },
            |_| {
                middle_calls.set(middle_calls.get() + 1);
                Err(Abort::new(AbortCode::Capacity))
            },
            |_| 7,
            |_| 0,
        );
        assert_eq!((v, path), (7, PathKind::Fallback));
        assert_eq!(fast_calls.get(), exec.limits().fast);
        assert_eq!(middle_calls.get(), exec.limits().middle);
        assert_eq!(stats.aborts(PathKind::Fast).conflict, exec.limits().fast as u64);
        assert_eq!(
            stats.aborts(PathKind::Middle).capacity,
            exec.limits().middle as u64
        );
    }

    #[test]
    fn three_path_moves_to_middle_immediately_on_f_nonzero() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let fast_calls = Cell::new(0u32);
        let (v, path) = exec.run_op(
            &mut th,
            &mut stats,
            |_| {
                fast_calls.set(fast_calls.get() + 1);
                Err(Abort::explicit(codes::F_NONZERO))
            },
            |_| Ok(9),
            |_| 0,
            |_| 0,
        );
        assert_eq!((v, path), (9, PathKind::Middle));
        assert_eq!(fast_calls.get(), 1, "no more fast attempts after F != 0");
    }

    #[test]
    fn three_path_fallback_increments_f() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let rt = exec.runtime().clone();
        let observed_f = Cell::new(0u64);
        exec.run_op(
            &mut th,
            &mut stats,
            |_| Err(Abort::new(AbortCode::Conflict)),
            |_| Err(Abort::new(AbortCode::Conflict)),
            |_| {
                observed_f.set(u64::from(exec.fallback_indicator().is_active(&rt)));
                1
            },
            |_| 0,
        );
        assert_eq!(observed_f.get(), 1, "F active while on the fallback");
        assert!(!exec.fallback_indicator().is_active(&rt), "F released after");
    }

    #[test]
    fn two_path_con_uses_middle_closure_as_fast_path() {
        let (exec, eng) = setup(Strategy::TwoPathCon);
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let (v, path) = exec.run_op(
            &mut th,
            &mut stats,
            |_| panic!("2-path-con has no sequential fast path"),
            |_| Ok(5),
            |_| 0,
            |_| 0,
        );
        assert_eq!((v, path), (5, PathKind::Fast));
    }

    #[test]
    fn tle_falls_back_under_lock() {
        let (exec, eng) = setup(Strategy::Tle);
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let rt = exec.runtime().clone();
        let lock_held_inside = Cell::new(false);
        let (v, path) = exec.run_op(
            &mut th,
            &mut stats,
            |_| Err(Abort::new(AbortCode::Conflict)),
            |_| unreachable!(),
            |_| unreachable!(),
            |_| {
                lock_held_inside.set(exec.tle_lock().is_held(&rt));
                11
            },
        );
        assert_eq!((v, path), (11, PathKind::Fallback));
        assert!(lock_held_inside.get(), "sequential fallback runs under lock");
        assert!(!exec.tle_lock().is_held(&rt));
    }

    #[test]
    fn fixed_contexts_reject_runtime_swaps() {
        let (exec, _eng) = setup(Strategy::ThreePath);
        assert!(!exec.is_adaptive());
        assert_eq!(
            exec.set_strategy(Strategy::Tle),
            Err(StrategySwapError::NotAdaptive)
        );
        assert_eq!(exec.strategy(), Strategy::ThreePath);
    }

    #[test]
    fn adaptive_swap_changes_strategy_and_limits() {
        let (exec, _eng) = setup(Strategy::Tle);
        let exec = exec.with_adaptive();
        assert!(exec.is_adaptive());
        assert_eq!(exec.limits(), PathLimits::for_strategy(Strategy::Tle));
        exec.set_strategy(Strategy::ThreePath).unwrap();
        assert_eq!(exec.strategy(), Strategy::ThreePath);
        assert_eq!(exec.limits(), PathLimits::for_strategy(Strategy::ThreePath));
        // Only the TLE <-> 3-path pair is covered by the blended
        // subscription discipline.
        assert_eq!(
            exec.set_strategy(Strategy::NonHtm),
            Err(StrategySwapError::Unsupported(Strategy::NonHtm))
        );
        exec.set_strategy(Strategy::Tle).unwrap();
        assert_eq!(exec.strategy(), Strategy::Tle);
    }

    #[test]
    fn adaptive_subscription_covers_lock_and_f() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec.with_adaptive();
        let mut th = eng.register_thread();
        let rt = exec.runtime().clone();
        // F active: fast attempts abort even in TLE mode.
        exec.set_strategy(Strategy::Tle).unwrap();
        exec.fallback_indicator().arrive(&rt, 0);
        let r: Result<(), _> = exec.attempt_seq(&eng, &mut th, |_| Ok(()));
        assert_eq!(r.unwrap_err().user_code(), Some(codes::F_NONZERO));
        exec.fallback_indicator().depart(&rt, 0);
        // Lock held: fast attempts abort even in 3-path mode, and so do
        // middle-path template transactions.
        exec.set_strategy(Strategy::ThreePath).unwrap();
        exec.tle_lock().acquire(&rt);
        let r: Result<(), _> = exec.attempt_seq(&eng, &mut th, |_| Ok(()));
        assert_eq!(r.unwrap_err().user_code(), Some(codes::LOCK_HELD));
        let r: Result<(), _> = exec.attempt_template(&eng, &mut th, |_| Ok(()));
        assert_eq!(r.unwrap_err().user_code(), Some(codes::LOCK_HELD));
        exec.tle_lock().release(&rt);
        let r: Result<(), _> = exec.attempt_seq(&eng, &mut th, |_| Ok(()));
        assert!(r.is_ok());
    }

    #[test]
    fn adaptive_tle_fallback_drains_f_before_running() {
        // A TLE-mode operation on an adaptive context must not run its
        // exclusive sequential section while a lock-free fallback
        // operation is still active: the lock holder waits for F.
        let (exec, eng) = setup(Strategy::Tle);
        let exec = Arc::new(exec.with_adaptive());
        let rt = exec.runtime().clone();
        exec.fallback_indicator().arrive(&rt, 1);
        let f_seen_inside = Cell::new(true);
        std::thread::scope(|s| {
            let exec2 = Arc::clone(&exec);
            let rt2 = rt.clone();
            s.spawn(move || {
                // Simulated lock-free fallback op: departs after a delay.
                std::thread::sleep(std::time::Duration::from_millis(20));
                exec2.fallback_indicator().depart(&rt2, 1);
            });
            let mut th = eng.register_thread();
            let mut stats = PathStats::new();
            let (v, path) = exec.run_op(
                &mut th,
                &mut stats,
                |_| Err(Abort::explicit(codes::F_NONZERO)),
                |_| unreachable!("TLE has no middle path"),
                |_| unreachable!("TLE mode falls back under the lock"),
                |_| {
                    f_seen_inside.set(exec.fallback_indicator().is_active(&rt));
                    13
                },
            );
            assert_eq!((v, path), (13, PathKind::Fallback));
        });
        assert!(!f_seen_inside.get(), "seq section ran while F was active");
        assert!(!exec.tle_lock().is_held(&rt));
    }

    #[test]
    fn adaptive_threepath_fallback_backs_off_while_lock_held() {
        // A 3-path-mode fallback on an adaptive context must not run
        // concurrently with a TLE lock holder: it arrives on F only once
        // the lock is free.
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = Arc::new(exec.with_adaptive());
        let rt = exec.runtime().clone();
        exec.tle_lock().acquire(&rt);
        let lock_seen_inside = Cell::new(true);
        std::thread::scope(|s| {
            let exec2 = Arc::clone(&exec);
            let rt2 = rt.clone();
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                exec2.tle_lock().release(&rt2);
            });
            let mut th = eng.register_thread();
            let mut stats = PathStats::new();
            let (v, path) = exec.run_op(
                &mut th,
                &mut stats,
                |_| Err(Abort::explicit(codes::LOCK_HELD)),
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| {
                    lock_seen_inside.set(exec.tle_lock().is_held(&rt));
                    29
                },
                |_| unreachable!("3-path mode never takes the lock"),
            );
            assert_eq!((v, path), (29, PathKind::Fallback));
        });
        assert!(
            !lock_seen_inside.get(),
            "lock-free fallback overlapped the TLE lock holder"
        );
        assert!(!exec.fallback_indicator().is_active(&rt));
    }

    /// Deterministic probing tuning for budget tests: score windows by
    /// completed ops per (weighted) attempt, not wall-clock.
    fn probing_budget_cfg(epoch_ops: u64) -> BudgetConfig {
        BudgetConfig {
            epoch_ops,
            wall_clock: false,
            ..BudgetConfig::default()
        }
    }

    #[test]
    fn adaptive_budgets_probe_to_the_floor_under_storm_and_recover() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec.with_adaptive_budgets(probing_budget_cfg(64));
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let anchor = PathLimits::for_strategy(Strategy::ThreePath);
        assert_eq!(exec.limits(), anchor);
        // Conflict storm: every transactional attempt aborts, every op
        // drains the full budget and completes on the fallback. Every
        // arm ends on the fallback, so the arm wasting the fewest
        // attempts first — the floor — measures fastest.
        for _ in 0..64 * 20 {
            exec.run_op(
                &mut th,
                &mut stats,
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| 1,
                |_| 0,
            );
        }
        let b = exec.budgets().expect("budgets enabled");
        assert_eq!(
            b.settled_limits(Strategy::ThreePath),
            PathLimits { fast: 1, middle: 1 },
            "storm probing settles both budgets on the floor"
        );
        assert!(b.epochs() > 0);
        // The storm relents halfway: operations now commit on their 5th
        // fast attempt. Collapsed budgets (< 5 attempts) keep eating the
        // fallback penalty; deeper arms commit transactionally — probing
        // must grow the budget back.
        for _ in 0..64 * 30 {
            let calls = Cell::new(0u32);
            exec.run_op(
                &mut th,
                &mut stats,
                |_| {
                    calls.set(calls.get() + 1);
                    if calls.get() >= 5 {
                        Ok(1)
                    } else {
                        Err(Abort::new(AbortCode::Conflict))
                    }
                },
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| 1,
                |_| 0,
            );
        }
        assert!(
            b.settled_limits(Strategy::ThreePath).fast >= 5,
            "probing must re-open the budget once deeper arms pay off (got {:?})",
            b.settled_limits(Strategy::ThreePath)
        );
    }

    #[test]
    fn explicit_aborts_do_not_shrink_budgets() {
        // F != 0 aborts are the escalation protocol working: an op that
        // breaks to the middle path must not look like a storm.
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec.with_adaptive_budgets(probing_budget_cfg(32));
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        for _ in 0..32 * 4 {
            exec.run_op(
                &mut th,
                &mut stats,
                |_| Err(Abort::explicit(codes::F_NONZERO)),
                |_| Ok(3),
                |_| 0,
                |_| 0,
            );
        }
        let b = exec.budgets().expect("budgets enabled");
        assert_eq!(
            b.settled_limits(Strategy::ThreePath),
            PathLimits::for_strategy(Strategy::ThreePath),
            "explicit-only windows keep the anchor"
        );
    }

    #[test]
    fn strategy_swap_reanchors_budgets() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec
            .with_adaptive()
            .with_adaptive_budgets(probing_budget_cfg(64));
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        for _ in 0..64 * 20 {
            exec.run_op(
                &mut th,
                &mut stats,
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| 1,
                |_| 0,
            );
        }
        let b = exec.budgets().expect("budgets enabled");
        assert!(
            b.settled_limits(Strategy::ThreePath).fast < 10,
            "settled below the anchor before the swap"
        );
        exec.set_strategy(Strategy::Tle).unwrap();
        assert_eq!(
            exec.limits(),
            PathLimits::for_strategy(Strategy::Tle),
            "swap re-anchors at the new strategy's paper budgets"
        );
    }

    #[test]
    fn escalated_ops_run_under_collapsed_limits_without_feeding_budgets() {
        // A validation-storm escalation re-enters the transactional
        // machinery with the budgets' *current* attempt limits — but its
        // aborts must not count toward the budget windows, or storm-time
        // escalated reads would hold the budgets shrunk forever.
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec.with_adaptive_budgets(probing_budget_cfg(64));
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        // Collapse the budgets with a conflict storm through run_op.
        for _ in 0..64 * 20 {
            exec.run_op(
                &mut th,
                &mut stats,
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| 1,
                |_| 0,
            );
        }
        let b = exec.budgets().expect("budgets enabled");
        assert_eq!(
            b.settled_limits(Strategy::ThreePath),
            PathLimits { fast: 1, middle: 1 }
        );
        // Whatever arm the prober is currently holding is what escalated
        // ops must observe; they never feed the windows, so it is stable
        // across the escalated phase below.
        let collapsed = exec.limits();
        let epochs_before = b.epochs();
        // Escalated ops observe the collapsed limits...
        let fast_calls = Cell::new(0u32);
        let (v, path) = exec.run_op_escalated(
            &mut th,
            &mut stats,
            |_| {
                fast_calls.set(fast_calls.get() + 1);
                Err(Abort::new(AbortCode::Conflict))
            },
            |_| Err(Abort::new(AbortCode::Conflict)),
            |_| 5,
            |_| 0,
        );
        assert_eq!((v, path), (5, PathKind::Fallback));
        assert_eq!(fast_calls.get(), collapsed.fast, "collapsed budget applies");
        // ...but many epochs' worth of escalated aborts move nothing.
        for _ in 0..64 * 4 {
            exec.run_op_escalated(
                &mut th,
                &mut stats,
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| 1,
                |_| 0,
            );
        }
        assert_eq!(exec.limits(), collapsed, "escalations never move budgets");
        assert_eq!(b.epochs(), epochs_before, "no escalated op turns a window");
    }

    #[test]
    fn fixed_limit_override_wins_over_adaptive_budgets() {
        let (exec, _eng) = setup(Strategy::ThreePath);
        let exec = exec
            .with_limits(PathLimits { fast: 3, middle: 4 })
            .with_adaptive_budgets(BudgetConfig::default());
        assert_eq!(exec.limits(), PathLimits { fast: 3, middle: 4 });
    }

    #[test]
    fn subscription_aborts_fast_path_when_f_nonzero() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let mut th = eng.register_thread();
        let rt = exec.runtime().clone();
        exec.fallback_indicator().arrive(&rt, 0);
        let r: Result<(), _> = exec.attempt_seq(&eng, &mut th, |_| Ok(()));
        assert_eq!(r.unwrap_err().user_code(), Some(codes::F_NONZERO));
        exec.fallback_indicator().depart(&rt, 0);
        let r: Result<(), _> = exec.attempt_seq(&eng, &mut th, |_| Ok(()));
        assert!(r.is_ok());
    }

    #[test]
    fn batch_commits_in_one_fast_transaction() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec.with_batching();
        assert!(exec.is_batched());
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let (v, path) = exec.run_batch(&mut th, &mut stats, 8, |_| Ok(99), |_| 0);
        assert_eq!((v, path), (99, PathKind::Fast));
        assert_eq!(stats.completed(PathKind::Fast), 8, "whole batch landed");
        assert_eq!(stats.batches(), 1);
        assert_eq!(stats.batch_ops(), 8);
        assert_eq!(stats.batch_txns(), 1, "one transaction for the batch");
        assert_eq!(stats.commits(PathKind::Fast), 1);
    }

    #[test]
    fn batch_escalates_to_one_locked_section() {
        let (exec, eng) = setup(Strategy::Tle);
        let exec = exec.with_batching();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let rt = exec.runtime().clone();
        let lock_held_inside = Cell::new(false);
        let (v, path) = exec.run_batch(
            &mut th,
            &mut stats,
            4,
            |_| Err(Abort::new(AbortCode::Conflict)),
            |_| {
                lock_held_inside.set(exec.tle_lock().is_held(&rt));
                7
            },
        );
        assert_eq!((v, path), (7, PathKind::Fallback));
        assert!(lock_held_inside.get(), "serialized lane runs under the lock");
        assert!(!exec.tle_lock().is_held(&rt));
        assert_eq!(stats.completed(PathKind::Fallback), 4);
        assert_eq!(stats.batch_txns(), 1, "one serialized section");
    }

    #[test]
    fn batched_threepath_abandons_fast_when_serialized_work_is_active() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec.with_batching();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let fast_calls = Cell::new(0u32);
        let (_, path) = exec.run_batch(
            &mut th,
            &mut stats,
            2,
            |_| {
                fast_calls.set(fast_calls.get() + 1);
                Err(Abort::explicit(codes::LOCK_HELD))
            },
            |_| 0,
        );
        assert_eq!(path, PathKind::Fallback);
        assert_eq!(fast_calls.get(), 1, "no doomed re-attempts after LOCK_HELD");
    }

    #[test]
    fn batched_context_forces_blended_subscription() {
        // Non-adaptive 3-path normally subscribes only to F; batching
        // must add the lock subscription so a batch's serialized section
        // excludes every concurrent transaction.
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec.with_batching();
        let mut th = eng.register_thread();
        let rt = exec.runtime().clone();
        exec.tle_lock().acquire(&rt);
        let r: Result<(), _> = exec.attempt_seq(&eng, &mut th, |_| Ok(()));
        assert_eq!(r.unwrap_err().user_code(), Some(codes::LOCK_HELD));
        let r: Result<(), _> = exec.attempt_template(&eng, &mut th, |_| Ok(()));
        assert_eq!(r.unwrap_err().user_code(), Some(codes::LOCK_HELD));
        exec.tle_lock().release(&rt);
        let r: Result<(), _> = exec.attempt_seq(&eng, &mut th, |_| Ok(()));
        assert!(r.is_ok());
    }

    #[test]
    #[should_panic(expected = "with_batching")]
    fn run_batch_requires_batched_context() {
        let (exec, eng) = setup(Strategy::ThreePath);
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let _ = exec.run_batch(&mut th, &mut stats, 1, |_| Ok(0), |_| 0);
    }

    #[test]
    #[should_panic(expected = "TLE or 3-path")]
    fn batching_rejects_uncovered_strategies() {
        let (exec, _eng) = setup(Strategy::TwoPathCon);
        let _ = exec.with_batching();
    }

    #[test]
    fn admission_probe_retunes_the_gate_cap() {
        use crate::admission::AdmissionProbeConfig;
        let (exec, eng) = setup(Strategy::ThreePath);
        let exec = exec.with_admission_probe(AdmissionProbeConfig {
            epoch_ops: 8,
            ladder: vec![1, 4],
            ..AdmissionProbeConfig::default()
        });
        let gate = exec.admission().expect("probe installs a gate");
        assert_eq!(gate.cap(), 4, "gate starts at the widest ladder cap");
        let rt = exec.runtime().clone();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        // Keep F active so every op is gated; the fast path aborts on
        // its subscription and the op drains to the fallback.
        exec.fallback_indicator().arrive(&rt, 0);
        for _ in 0..8 * 24 {
            exec.run_op(
                &mut th,
                &mut stats,
                |_| Err(Abort::explicit(codes::F_NONZERO)),
                |_| Err(Abort::new(AbortCode::Conflict)),
                |_| 1,
                |_| 0,
            );
        }
        exec.fallback_indicator().depart(&rt, 0);
        assert!(
            exec.admission_probe_epochs() >= 2,
            "gated traffic must turn decision windows (got {})",
            exec.admission_probe_epochs()
        );
        let cap = exec.admission().unwrap().cap();
        assert!(cap == 1 || cap == 4, "cap {cap} left the ladder");
    }
}
