//! Template-operation modes: the same tree-update-template code runs on the
//! software path (original LLX/SCX) or inside a transaction (HTM LLX/SCX),
//! depending on which [`TemplateMode`] it is instantiated with.

use threepath_htm::{codes, Abort, TxCell, Txn};
use threepath_llxscx::{LlxHandle, LlxResult, ScxArgs, ScxEngine, ScxHeader, ScxThread};
use threepath_reclaim::ReclaimCtx;

use crate::effects::Effects;

/// Result of one template-operation attempt body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome<T> {
    /// The operation completed (its SCX succeeded, or it decided no change
    /// was needed).
    Done(T),
    /// Transient failure (LLX failed, node finalized, or SCX lost a race):
    /// re-run the operation from its search phase. Only produced in
    /// [`OrigMode`]; transactional modes abort instead.
    Retry,
}

impl<T> OpOutcome<T> {
    /// Unwraps `Done`, panicking on `Retry`.
    pub fn unwrap_done(self) -> T {
        match self {
            OpOutcome::Done(t) => t,
            OpOutcome::Retry => panic!("operation outcome was Retry"),
        }
    }
}

/// How a template operation performs its LLXs, SCX, and traversal reads.
///
/// Implementors: [`OrigMode`] (software path) and [`TxMode`] (HTM paths).
pub trait TemplateMode {
    /// Performs an LLX on a node.
    ///
    /// Returns `Ok(None)` when the operation should retry from scratch
    /// (software path), or aborts the transaction (HTM paths).
    fn llx(&mut self, hdr: &ScxHeader, mutable: &[TxCell]) -> Result<Option<LlxHandle>, Abort>;

    /// Performs the operation's SCX. `Ok(false)` means the SCX failed and
    /// the operation should retry (software path only).
    fn scx(&mut self, args: &ScxArgs<'_>) -> Result<bool, Abort>;

    /// Reads a cell during the search phase.
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort>;

    /// Schedules `ptr` for reclamation once the operation's success is
    /// durable (immediately on the software path, post-commit on HTM paths).
    /// Call only after [`Self::scx`] returned `Ok(true)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`threepath_reclaim::ReclaimCtx::retire`].
    unsafe fn retire<T: Send>(&mut self, ptr: *mut T);

    /// Allocates a node; in transactional mode the allocation is freed
    /// automatically if the attempt aborts.
    fn alloc<T: Send>(&mut self, val: T) -> *mut T;

    /// Frees a node allocated with [`Self::alloc`] that will not be
    /// published (e.g. after a failed SCX on the software path).
    ///
    /// # Safety
    ///
    /// `ptr` must come from this mode's `alloc` during the current attempt
    /// and must not have been written into any reachable cell.
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T);

    /// Reads a cell as a pointer.
    fn read_ptr<T>(&mut self, cell: &TxCell) -> Result<*mut T, Abort> {
        self.read(cell).map(|v| v as *mut T)
    }
}

/// Software-path mode: the original CAS-based LLX/SCX with helping.
pub struct OrigMode<'a> {
    eng: &'a ScxEngine,
    th: &'a ScxThread,
}

impl<'a> OrigMode<'a> {
    /// Creates the mode. The caller must hold an epoch pin for the whole
    /// operation attempt.
    pub fn new(eng: &'a ScxEngine, th: &'a ScxThread) -> Self {
        debug_assert!(th.reclaim.is_pinned());
        OrigMode { eng, th }
    }
}

impl TemplateMode for OrigMode<'_> {
    fn llx(&mut self, hdr: &ScxHeader, mutable: &[TxCell]) -> Result<Option<LlxHandle>, Abort> {
        match self.eng.llx(self.th, hdr, mutable) {
            LlxResult::Snapshot(h) => Ok(Some(h)),
            // Fail: a concurrent SCX is in flight (we already helped it).
            // Finalized: the node left the structure; re-search.
            LlxResult::Fail | LlxResult::Finalized => Ok(None),
        }
    }

    fn scx(&mut self, args: &ScxArgs<'_>) -> Result<bool, Abort> {
        Ok(self.eng.scx_orig(self.th, args))
    }

    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        Ok(cell.load_direct(self.eng.runtime()))
    }

    unsafe fn retire<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract; pooled nodes recycle on expiry.
        unsafe { self.th.reclaim.retire_node(ptr) };
    }
    fn alloc<T: Send>(&mut self, val: T) -> *mut T {
        self.th.reclaim.alloc(val)
    }
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: the SCX that would have published `ptr` failed (or was
        // never attempted), so the caller is the sole owner — the block
        // goes straight back to the pool.
        unsafe { self.th.reclaim.dealloc_unpublished(ptr) };
    }
}

/// HTM-path mode: the operation runs inside one transaction; LLX/SCX become
/// the paper's transformed versions (tagged sequence numbers, no helping,
/// no SCX-records).
pub struct TxMode<'a, 'b> {
    eng: &'a ScxEngine,
    tx: &'a mut Txn<'b>,
    tseq: u64,
    effects: &'a mut Effects,
    reclaim: &'a ReclaimCtx,
}

impl<'a, 'b> TxMode<'a, 'b> {
    /// Creates the mode for one transactional attempt. `tseq` is the
    /// thread's fresh tagged sequence number for this attempt; `reclaim`
    /// is the calling thread's reclamation context (the allocation seam).
    pub fn new(
        eng: &'a ScxEngine,
        tx: &'a mut Txn<'b>,
        tseq: u64,
        effects: &'a mut Effects,
        reclaim: &'a ReclaimCtx,
    ) -> Self {
        TxMode {
            eng,
            tx,
            tseq,
            effects,
            reclaim,
        }
    }

    /// The underlying transaction.
    pub fn txn(&mut self) -> &mut Txn<'b> {
        self.tx
    }
}

impl TemplateMode for TxMode<'_, '_> {
    fn llx(&mut self, hdr: &ScxHeader, mutable: &[TxCell]) -> Result<Option<LlxHandle>, Abort> {
        match self.eng.llx_tx(self.tx, hdr, mutable)? {
            LlxResult::Snapshot(h) => Ok(Some(h)),
            // No helping inside transactions (paper Section 4): abort and
            // let the attempt policy escalate; helping happens once the
            // operation reaches the software path.
            LlxResult::Fail => Err(Abort::explicit(codes::LLX_FAIL)),
            LlxResult::Finalized => Err(Abort::explicit(codes::LLX_FINALIZED)),
        }
    }

    fn scx(&mut self, args: &ScxArgs<'_>) -> Result<bool, Abort> {
        self.eng.scx_tx(self.tx, self.tseq, args)?;
        // The committed transaction will have replaced each frozen node's
        // info value; release the replaced records' references then.
        for h in args.v {
            self.effects.defer_release_info(h.info_observed());
        }
        Ok(true)
    }

    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        self.tx.read(cell)
    }

    unsafe fn retire<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract, applied post-commit.
        unsafe { self.effects.defer_retire(ptr) };
    }
    fn alloc<T: Send>(&mut self, val: T) -> *mut T {
        self.effects.alloc(self.reclaim, val)
    }
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract.
        unsafe { self.effects.free_unpublished(self.reclaim, ptr) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_outcome_unwrap() {
        assert_eq!(OpOutcome::Done(5).unwrap_done(), 5);
    }

    #[test]
    #[should_panic(expected = "Retry")]
    fn op_outcome_retry_panics() {
        OpOutcome::<u32>::Retry.unwrap_done();
    }
}
