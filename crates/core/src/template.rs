//! Template-operation modes: the same tree-update-template code runs on the
//! software path (original LLX/SCX) or inside a transaction (HTM LLX/SCX),
//! depending on which [`TemplateMode`] it is instantiated with.

use threepath_htm::{codes, Abort, TxCell, Txn};
use threepath_llxscx::{LlxHandle, LlxResult, ScxArgs, ScxEngine, ScxHeader, ScxThread};
use threepath_reclaim::ReclaimCtx;

use crate::access::Mem;
use crate::effects::Effects;

/// Result of one template-operation attempt body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome<T> {
    /// The operation completed (its SCX succeeded, or it decided no change
    /// was needed).
    Done(T),
    /// Transient failure (LLX failed, node finalized, or SCX lost a race):
    /// re-run the operation from its search phase. Only produced in
    /// [`OrigMode`]; transactional modes abort instead.
    Retry,
}

impl<T> OpOutcome<T> {
    /// Unwraps `Done`, panicking on `Retry`.
    pub fn unwrap_done(self) -> T {
        match self {
            OpOutcome::Done(t) => t,
            OpOutcome::Retry => panic!("operation outcome was Retry"),
        }
    }
}

/// How a template operation performs its LLXs, SCX, and traversal reads.
///
/// Implementors: [`OrigMode`] (software path) and [`TxMode`] (HTM paths).
pub trait TemplateMode {
    /// Performs an LLX on a node.
    ///
    /// Returns `Ok(None)` when the operation should retry from scratch
    /// (software path), or aborts the transaction (HTM paths).
    fn llx(&mut self, hdr: &ScxHeader, mutable: &[TxCell]) -> Result<Option<LlxHandle>, Abort>;

    /// Performs the operation's SCX. `Ok(false)` means the SCX failed and
    /// the operation should retry (software path only).
    fn scx(&mut self, args: &ScxArgs<'_>) -> Result<bool, Abort>;

    /// Reads a cell during the search phase.
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort>;

    /// Schedules `ptr` for reclamation once the operation's success is
    /// durable (immediately on the software path, post-commit on HTM paths).
    /// Call only after [`Self::scx`] returned `Ok(true)`.
    ///
    /// # Safety
    ///
    /// Same contract as [`threepath_reclaim::ReclaimCtx::retire`].
    unsafe fn retire<T: Send>(&mut self, ptr: *mut T);

    /// Allocates a node; in transactional mode the allocation is freed
    /// automatically if the attempt aborts.
    fn alloc<T: Send>(&mut self, val: T) -> *mut T;

    /// Frees a node allocated with [`Self::alloc`] that will not be
    /// published (e.g. after a failed SCX on the software path).
    ///
    /// # Safety
    ///
    /// `ptr` must come from this mode's `alloc` during the current attempt
    /// and must not have been written into any reachable cell.
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T);

    /// Reads a cell as a pointer.
    fn read_ptr<T>(&mut self, cell: &TxCell) -> Result<*mut T, Abort> {
        self.read(cell).map(|v| v as *mut T)
    }

    /// Compare-and-swap on a bare cell (one that is not an LLX mutable
    /// field): writes `new` iff the cell holds `old`, returning whether the
    /// swap applied. Transactional mode gets atomicity from the enclosing
    /// transaction; the software path uses a hardware-style CAS. Used by
    /// the snapshot version-chain push, which lives outside the template's
    /// LLX/SCX protocol.
    fn cas_weak(&mut self, cell: &TxCell, old: u64, new: u64) -> Result<bool, Abort>;
}

/// Software-path mode: the original CAS-based LLX/SCX with helping.
pub struct OrigMode<'a> {
    eng: &'a ScxEngine,
    th: &'a ScxThread,
}

impl<'a> OrigMode<'a> {
    /// Creates the mode. The caller must hold an epoch pin for the whole
    /// operation attempt.
    pub fn new(eng: &'a ScxEngine, th: &'a ScxThread) -> Self {
        debug_assert!(th.reclaim.is_pinned());
        OrigMode { eng, th }
    }
}

impl TemplateMode for OrigMode<'_> {
    fn llx(&mut self, hdr: &ScxHeader, mutable: &[TxCell]) -> Result<Option<LlxHandle>, Abort> {
        match self.eng.llx(self.th, hdr, mutable) {
            LlxResult::Snapshot(h) => Ok(Some(h)),
            // Fail: a concurrent SCX is in flight (we already helped it).
            // Finalized: the node left the structure; re-search.
            LlxResult::Fail | LlxResult::Finalized => Ok(None),
        }
    }

    fn scx(&mut self, args: &ScxArgs<'_>) -> Result<bool, Abort> {
        Ok(self.eng.scx_orig(self.th, args))
    }

    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        Ok(cell.load_direct(self.eng.runtime()))
    }

    fn cas_weak(&mut self, cell: &TxCell, old: u64, new: u64) -> Result<bool, Abort> {
        Ok(cell.cas_direct(self.eng.runtime(), old, new).is_ok())
    }

    unsafe fn retire<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract; pooled nodes recycle on expiry.
        unsafe { self.th.reclaim.retire_node(ptr) };
    }
    fn alloc<T: Send>(&mut self, val: T) -> *mut T {
        self.th.reclaim.alloc(val)
    }
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: the SCX that would have published `ptr` failed (or was
        // never attempted), so the caller is the sole owner — the block
        // goes straight back to the pool.
        unsafe { self.th.reclaim.dealloc_unpublished(ptr) };
    }
}

/// HTM-path mode: the operation runs inside one transaction; LLX/SCX become
/// the paper's transformed versions (tagged sequence numbers, no helping,
/// no SCX-records).
pub struct TxMode<'a, 'b> {
    eng: &'a ScxEngine,
    tx: &'a mut Txn<'b>,
    tseq: u64,
    effects: &'a mut Effects,
    reclaim: &'a ReclaimCtx,
}

impl<'a, 'b> TxMode<'a, 'b> {
    /// Creates the mode for one transactional attempt. `tseq` is the
    /// thread's fresh tagged sequence number for this attempt; `reclaim`
    /// is the calling thread's reclamation context (the allocation seam).
    pub fn new(
        eng: &'a ScxEngine,
        tx: &'a mut Txn<'b>,
        tseq: u64,
        effects: &'a mut Effects,
        reclaim: &'a ReclaimCtx,
    ) -> Self {
        TxMode {
            eng,
            tx,
            tseq,
            effects,
            reclaim,
        }
    }

    /// The underlying transaction.
    pub fn txn(&mut self) -> &mut Txn<'b> {
        self.tx
    }
}

impl TemplateMode for TxMode<'_, '_> {
    fn llx(&mut self, hdr: &ScxHeader, mutable: &[TxCell]) -> Result<Option<LlxHandle>, Abort> {
        match self.eng.llx_tx(self.tx, hdr, mutable)? {
            LlxResult::Snapshot(h) => Ok(Some(h)),
            // No helping inside transactions (paper Section 4): abort and
            // let the attempt policy escalate; helping happens once the
            // operation reaches the software path.
            LlxResult::Fail => Err(Abort::explicit(codes::LLX_FAIL)),
            LlxResult::Finalized => Err(Abort::explicit(codes::LLX_FINALIZED)),
        }
    }

    fn scx(&mut self, args: &ScxArgs<'_>) -> Result<bool, Abort> {
        self.eng.scx_tx(self.tx, self.tseq, args)?;
        // The committed transaction will have replaced each frozen node's
        // info value; release the replaced records' references then.
        for h in args.v {
            self.effects.defer_release_info(h.info_observed());
        }
        Ok(true)
    }

    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        self.tx.read(cell)
    }

    fn cas_weak(&mut self, cell: &TxCell, old: u64, new: u64) -> Result<bool, Abort> {
        if self.tx.read(cell)? != old {
            return Ok(false);
        }
        self.tx.write(cell, new)?;
        Ok(true)
    }

    unsafe fn retire<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract, applied post-commit.
        unsafe { self.effects.defer_retire(ptr) };
    }
    fn alloc<T: Send>(&mut self, val: T) -> *mut T {
        self.effects.alloc(self.reclaim, val)
    }
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract.
        unsafe { self.effects.free_unpublished(self.reclaim, ptr) };
    }
}

/// Adapts a [`TemplateMode`] to the [`Mem`] interface for `Mem`-generic
/// code running *inside* a template operation: read-only traversals and the
/// snapshot version-chain deposit. Template operations mutate nodes only
/// through LLX/SCX, so raw writes stay unreachable; the adapter exposes
/// reads, allocation, retirement, and the bare-cell CAS
/// ([`TemplateMode::cas_weak`]).
pub struct TemplateMem<'m, M: TemplateMode>(pub &'m mut M);

impl<M: TemplateMode> Mem for TemplateMem<'_, M> {
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        self.0.read(cell)
    }
    fn write(&mut self, _cell: &TxCell, _v: u64) -> Result<(), Abort> {
        unreachable!("template operations write only through LLX/SCX")
    }
    fn cas(&mut self, cell: &TxCell, old: u64, new: u64) -> Result<bool, Abort> {
        self.0.cas_weak(cell, old, new)
    }
    unsafe fn retire<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract.
        unsafe { self.0.retire(ptr) };
    }
    fn alloc<T: Send>(&mut self, val: T) -> *mut T {
        self.0.alloc(val)
    }
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract.
        unsafe { self.0.free_unpublished(ptr) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_outcome_unwrap() {
        assert_eq!(OpOutcome::Done(5).unwrap_done(), 5);
    }

    #[test]
    #[should_panic(expected = "Retry")]
    fn op_outcome_retry_panics() {
        OpOutcome::<u32>::Retry.unwrap_done();
    }
}
