//! The HTM admission window cap as a contention-manager client.
//!
//! PR 7 gated HTM entry while the serialized path is active behind an
//! [`AdmissionGate`] with a *fixed* cap — a knob the caller has to guess
//! (`admission: Option<u32>`). This module replaces the guess with the
//! same empirical rule the strategy/budget/read loops already use: probe
//! a small ladder of candidate caps with live traffic, score each by how
//! many gated encounters complete per transactional attempt (overflows —
//! encounters bounced straight to the serialized lane — charged a
//! penalty weight), and keep the cap that measures fastest.
//!
//! Only *gated* encounters feed the window — operations that arrive
//! while the serialized path is idle never consult the gate, so a calm
//! workload pays nothing for the prober. The decision cadence therefore
//! tracks contention: the cap re-tunes exactly when admission matters.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use threepath_htm::CachePadded;

use crate::controller::{Controller, ProbeConfig, ProbingController, Window};
use crate::sync::AdmissionGate;

/// Attempt-equivalent cost charged for a gated encounter that overflowed
/// the window: the operation ran serialized under the fallback lock
/// (after a ready-lane wait) instead of transactionally — cheaper than an
/// abort storm, costlier than an admitted attempt that commits.
const OVERFLOW_WEIGHT: u64 = 8;

/// Tuning for the probing admission cap
/// ([`ExecCtx::with_admission_probe`](crate::ExecCtx::with_admission_probe)):
/// the HTM admission window width, chosen empirically from a ladder of
/// candidate caps instead of fixed at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionProbeConfig {
    /// Gated encounters per decision window. Must be at least 2 (a
    /// one-encounter window carries no comparative signal and
    /// degenerates the claim guard).
    pub epoch_ops: u64,
    /// Candidate caps, each one arm of the probing controller. Must be
    /// non-empty with every entry positive (a zero-width gate would
    /// starve HTM entry outright).
    pub ladder: Vec<u32>,
    /// Probe/settle cadence for the controller.
    pub probe: ProbeConfig,
}

impl Default for AdmissionProbeConfig {
    fn default() -> Self {
        AdmissionProbeConfig {
            epoch_ops: 128,
            ladder: vec![1, 2, 4, 8],
            probe: ProbeConfig::default(),
        }
    }
}

impl AdmissionProbeConfig {
    /// Checks the tuning for degeneracy (the conditions
    /// [`ExecCtx::with_admission_probe`](crate::ExecCtx::with_admission_probe)
    /// panics on; config layers surface them as typed errors).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.epoch_ops < 2 {
            return Err("admission-probe epoch_ops must be at least 2");
        }
        if self.epoch_ops > (1 << 30) {
            return Err("admission-probe epoch_ops must be at most 2^30");
        }
        if self.ladder.is_empty() {
            return Err("admission-probe ladder must name at least one cap");
        }
        if self.ladder.contains(&0) {
            return Err("admission-probe caps must be positive");
        }
        self.probe.validate()
    }

    /// The ladder arm probing starts from: the widest cap, so an
    /// unsaturated workload begins with the least intrusive gate and the
    /// prober has to *earn* a narrower window with evidence.
    pub(crate) fn initial_arm(&self) -> usize {
        self.ladder
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// The admission cap as a contention-manager client: a probing
/// controller over [`AdmissionProbeConfig::ladder`], fed only by gated
/// encounters, writing its chosen cap straight into the
/// [`AdmissionGate`] the execution paths consult.
#[derive(Debug)]
pub(crate) struct AdmissionProbe {
    cfg: AdmissionProbeConfig,
    ctl: ProbingController,
    /// `gated encounters << 32 | weighted attempts`, pushed only by
    /// gated encounters. Both halves stay far below 2³²: the encounter
    /// count claims the window at `epoch_ops ≤ 2³⁰`, and each encounter
    /// contributes a bounded attempt count.
    win: CachePadded<AtomicU64>,
    /// Overflows (encounters refused into the serialized lane) in the
    /// window.
    win_over: CachePadded<AtomicU64>,
    /// Single-claimant latch: the claimant swaps the windows, so racing
    /// claimants discard nothing.
    deciding: AtomicBool,
    epochs: AtomicU64,
}

impl AdmissionProbe {
    /// # Panics
    ///
    /// Panics on tuning [`AdmissionProbeConfig::validate`] rejects.
    pub(crate) fn new(cfg: AdmissionProbeConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid admission-probe tuning: {e}");
        }
        let initial = cfg.initial_arm();
        let ctl = ProbingController::new(cfg.ladder.len(), initial, cfg.probe);
        AdmissionProbe {
            ctl,
            win: CachePadded::new(AtomicU64::new(0)),
            win_over: CachePadded::new(AtomicU64::new(0)),
            deciding: AtomicBool::new(false),
            epochs: AtomicU64::new(0),
            cfg,
        }
    }

    /// The cap the gate should start from.
    pub(crate) fn initial_cap(&self) -> u32 {
        self.cfg.ladder[self.cfg.initial_arm()]
    }

    /// Decision windows completed.
    pub(crate) fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Feeds one *gated* encounter: `attempts` transactional attempts
    /// made while holding a window slot (0 for an overflow), and whether
    /// the encounter overflowed to the serialized lane. On an epoch
    /// decision the chosen cap is written into `gate`.
    pub(crate) fn note(&self, gate: &AdmissionGate, attempts: u64, overflowed: bool) {
        if overflowed {
            self.win_over.fetch_add(1, Ordering::Relaxed);
        }
        let add = (1u64 << 32) | attempts.min(u64::from(u32::MAX));
        let encounters = (self.win.fetch_add(add, Ordering::Relaxed) + add) >> 32;
        if encounters < self.cfg.epoch_ops {
            return;
        }
        if self
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let w = self.win.swap(0, Ordering::Relaxed);
        let over = self.win_over.swap(0, Ordering::Relaxed);
        let (encounters, attempts) = (w >> 32, w & u64::from(u32::MAX));
        // A racing claimant right behind the swap sees a near-empty
        // window: no signal, no decision.
        if encounters < self.cfg.epoch_ops / 2 {
            self.deciding.store(false, Ordering::Release);
            return;
        }
        let window = Window {
            ops: encounters,
            // Admitted encounters cost their measured attempts;
            // overflows are charged the serialized-lane penalty.
            attempts: encounters + attempts + over * OVERFLOW_WEIGHT,
            conflicts: over,
            other: 0,
            nanos: 0,
        };
        let arm = self.ctl.arm();
        self.ctl.observe(arm, window);
        gate.set_cap(self.cfg.ladder[self.ctl.arm()]);
        self.epochs.fetch_add(1, Ordering::Relaxed);
        self.deciding.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tuning_validates() {
        assert!(AdmissionProbeConfig::default().validate().is_ok());
    }

    #[test]
    fn degenerate_tunings_are_rejected() {
        let mut c = AdmissionProbeConfig {
            epoch_ops: 1,
            ..AdmissionProbeConfig::default()
        };
        assert!(c.validate().is_err());
        c.epoch_ops = 1 << 31;
        assert!(c.validate().is_err());
        c = AdmissionProbeConfig {
            ladder: vec![],
            ..AdmissionProbeConfig::default()
        };
        assert!(c.validate().is_err());
        c.ladder = vec![4, 0];
        assert!(c.validate().is_err());
    }

    #[test]
    fn probing_starts_from_the_widest_cap() {
        let cfg = AdmissionProbeConfig {
            ladder: vec![2, 8, 4],
            ..AdmissionProbeConfig::default()
        };
        assert_eq!(cfg.initial_arm(), 1);
        let probe = AdmissionProbe::new(cfg);
        assert_eq!(probe.initial_cap(), 8);
    }

    #[test]
    fn epochs_advance_and_retune_the_gate() {
        let cfg = AdmissionProbeConfig {
            epoch_ops: 4,
            ladder: vec![1, 4],
            ..AdmissionProbeConfig::default()
        };
        let probe = AdmissionProbe::new(cfg);
        let gate = AdmissionGate::new(probe.initial_cap());
        assert_eq!(gate.cap(), 4);
        // Feed enough gated encounters to cross several decision epochs;
        // the cap must always track the ladder.
        for i in 0..256u64 {
            probe.note(&gate, i % 3, i % 7 == 0);
        }
        assert!(probe.epochs() >= 2, "no decisions after 256 encounters");
        assert!(
            gate.cap() == 1 || gate.cap() == 4,
            "cap {} left the ladder",
            gate.cap()
        );
    }

    #[test]
    #[should_panic(expected = "admission-probe caps must be positive")]
    fn zero_cap_arm_panics() {
        let cfg = AdmissionProbeConfig {
            ladder: vec![0],
            ..AdmissionProbeConfig::default()
        };
        let _ = AdmissionProbe::new(cfg);
    }
}
