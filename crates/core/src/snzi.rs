//! SNZI: a Scalable Non-Zero Indicator (Ellen, Lev, Luchangco, Moir,
//! PODC 2007).
//!
//! The paper's Section 5 notes that if the scalability of the
//! fetch-and-increment object `F` becomes a concern, a SNZI can replace
//! it: `arrive`/`depart` operations contend on distributed leaf counters
//! and only touch the root on 0 ↔ non-zero transitions, while `query` reads
//! a single indicator word — exactly what fast-path transactions subscribe
//! to. Fewer writes to the subscribed cache line means fewer fast-path
//! aborts when the fallback path is busy.
//!
//! Layout: one root (plain counter + epoch version, no ½-state needed) and
//! a row of hierarchical leaf nodes implementing the paper's ½-state
//! arrive protocol; threads hash to leaves by id. The root publishes
//! transitions into a [`TxCell`] indicator encoded monotonically —
//! `open(v) = 2v+1`, `close(v) = 2v+2` — so stale indicator writes are
//! discarded by a monotone compare-and-swap and the indicator is *odd* iff
//! some operation is on the fallback path.

use std::sync::atomic::{AtomicU64, Ordering};

use threepath_htm::{CachePadded, HtmRuntime, TxCell};

/// Number of leaf counters (threads hash onto them by id).
const LEAVES: usize = 8;

/// Leaf state encoding: `count2` holds twice the logical count so the
/// SNZI ½-state is representable (`½ -> 1`, `1 -> 2`, ...), packed with a
/// version that increments on each 0 -> ½ initialization.
#[inline]
fn pack(count2: u32, version: u32) -> u64 {
    ((count2 as u64) << 32) | version as u64
}
#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// A scalable non-zero indicator.
pub struct Snzi {
    root: CachePadded<AtomicU64>, // (count, epoch-version)
    indicator: CachePadded<TxCell>, // monotone: 2v+1 = open, 2v+2 = closed
    leaves: Box<[CachePadded<AtomicU64>; LEAVES]>,
}

impl Snzi {
    /// A zero (inactive) indicator.
    pub fn new() -> Self {
        Snzi {
            root: CachePadded::new(AtomicU64::new(0)),
            indicator: CachePadded::new(TxCell::new(0)),
            leaves: Box::new(std::array::from_fn(|_| {
                CachePadded::new(AtomicU64::new(0))
            })),
        }
    }

    /// The indicator cell fast-path transactions subscribe to. The value is
    /// **odd** iff the SNZI is non-zero.
    pub fn cell(&self) -> &TxCell {
        &self.indicator
    }

    /// Whether a raw value read from [`Self::cell`] means "active".
    #[inline]
    pub fn raw_is_active(raw: u64) -> bool {
        raw & 1 == 1
    }

    /// Non-transactional query.
    pub fn is_active(&self, rt: &HtmRuntime) -> bool {
        Self::raw_is_active(self.indicator.load_direct(rt))
    }

    /// Registers an operation entering the fallback path.
    pub fn arrive(&self, rt: &HtmRuntime, tid: u16) {
        self.leaf_arrive(rt, tid as usize % LEAVES);
    }

    /// Registers an operation leaving the fallback path.
    pub fn depart(&self, rt: &HtmRuntime, tid: u16) {
        self.leaf_depart(rt, tid as usize % LEAVES);
    }

    /// The hierarchical-node Arrive of the SNZI paper (with the ½ state).
    fn leaf_arrive(&self, rt: &HtmRuntime, leaf: usize) {
        let node = &self.leaves[leaf];
        let mut succ = false;
        let mut undo = 0u32;
        while !succ {
            let cur = node.load(Ordering::Acquire);
            let (c2, v) = unpack(cur);
            let mut x = (c2, v);
            if c2 >= 2 {
                // count >= 1: plain increment.
                if node
                    .compare_exchange(cur, pack(c2 + 2, v), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    succ = true;
                    continue;
                } else {
                    continue;
                }
            }
            if c2 == 0 {
                // 0 -> ½: claim the initialization.
                if node
                    .compare_exchange(cur, pack(1, v + 1), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    succ = true;
                    x = (1, v + 1);
                } else {
                    continue;
                }
            }
            if x.0 == 1 {
                // ½ observed (ours or someone else's): arrive at the root,
                // then try to convert ½ -> 1. A failed conversion means
                // another helper's root arrival stands; undo ours.
                self.root_arrive(rt);
                if node
                    .compare_exchange(
                        pack(1, x.1),
                        pack(2, x.1),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_err()
                {
                    undo += 1;
                }
            }
        }
        for _ in 0..undo {
            self.root_depart(rt);
        }
    }

    fn leaf_depart(&self, rt: &HtmRuntime, leaf: usize) {
        let node = &self.leaves[leaf];
        loop {
            let cur = node.load(Ordering::Acquire);
            let (c2, v) = unpack(cur);
            debug_assert!(c2 >= 2, "depart on a zero/initializing SNZI leaf");
            if node
                .compare_exchange(cur, pack(c2 - 2, v), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if c2 == 2 {
                    self.root_depart(rt);
                }
                return;
            }
        }
    }

    fn root_arrive(&self, rt: &HtmRuntime) {
        loop {
            let cur = self.root.load(Ordering::Acquire);
            let (c, v) = unpack(cur);
            let (new, epoch) = if c == 0 {
                (pack(1, v + 1), v as u64 + 1)
            } else {
                (pack(c + 1, v), v as u64)
            };
            if self
                .root
                .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // Every arriver (help-)installs its epoch's open value,
                // not just the 0 -> 1 opener: an arriver that increments
                // a just-opened root must not return while the opener is
                // still stalled between its CAS and its install — the
                // indicator would under-report an active fallback. The
                // install is monotone and idempotent, so the common case
                // costs one read.
                self.install_indicator(rt, 2 * epoch + 1);
                return;
            }
        }
    }

    fn root_depart(&self, rt: &HtmRuntime) {
        loop {
            let cur = self.root.load(Ordering::Acquire);
            let (c, v) = unpack(cur);
            debug_assert!(c >= 1, "depart on a zero SNZI root");
            if self
                .root
                .compare_exchange(cur, pack(c - 1, v), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if c == 1 {
                    // Epoch v closed.
                    self.install_indicator(rt, 2 * (v as u64) + 2);
                }
                return;
            }
        }
    }

    /// Monotone install: the encoding orders `open(v) < close(v) <
    /// open(v+1)`, so stale writers lose and the indicator always reflects
    /// the latest transition.
    fn install_indicator(&self, rt: &HtmRuntime, val: u64) {
        loop {
            let cur = self.indicator.load_direct(rt);
            if cur >= val {
                return;
            }
            if self.indicator.cas_direct(rt, cur, val).is_ok() {
                return;
            }
        }
    }
}

impl Default for Snzi {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Snzi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snzi")
            .field("indicator", &self.indicator.load_plain())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use threepath_htm::HtmConfig;

    #[test]
    fn single_thread_transitions() {
        let rt = HtmRuntime::new(HtmConfig::default());
        let s = Snzi::new();
        assert!(!s.is_active(&rt));
        s.arrive(&rt, 0);
        assert!(s.is_active(&rt));
        s.arrive(&rt, 0);
        s.depart(&rt, 0);
        assert!(s.is_active(&rt), "still one arrival outstanding");
        s.depart(&rt, 0);
        assert!(!s.is_active(&rt));
    }

    #[test]
    fn different_leaves_aggregate() {
        let rt = HtmRuntime::new(HtmConfig::default());
        let s = Snzi::new();
        // tids hashing to different leaves.
        s.arrive(&rt, 0);
        s.arrive(&rt, 1);
        s.depart(&rt, 0);
        assert!(s.is_active(&rt));
        s.depart(&rt, 1);
        assert!(!s.is_active(&rt));
    }

    #[test]
    fn reuse_across_epochs() {
        let rt = HtmRuntime::new(HtmConfig::default());
        let s = Snzi::new();
        for _ in 0..50 {
            s.arrive(&rt, 3);
            assert!(s.is_active(&rt));
            s.depart(&rt, 3);
            assert!(!s.is_active(&rt));
        }
    }

    #[test]
    fn concurrent_arrive_depart_balances() {
        let rt = Arc::new(HtmRuntime::new(HtmConfig::default()));
        let s = Arc::new(Snzi::new());
        std::thread::scope(|sc| {
            for t in 0..8u16 {
                let rt = rt.clone();
                let s = s.clone();
                sc.spawn(move || {
                    for _ in 0..500 {
                        s.arrive(&rt, t);
                        // While we're inside, the indicator must be active.
                        assert!(s.is_active(&rt));
                        s.depart(&rt, t);
                    }
                });
            }
        });
        assert!(!s.is_active(&rt), "all departed: must read inactive");
    }

    #[test]
    fn indicator_changes_only_on_transitions() {
        // With a resident arrival, further arrive/depart churn must not
        // touch the indicator word (that is SNZI's entire point).
        let rt = HtmRuntime::new(HtmConfig::default());
        let s = Snzi::new();
        s.arrive(&rt, 0);
        let before = s.cell().load_plain();
        for _ in 0..100 {
            s.arrive(&rt, 1);
            s.depart(&rt, 1);
        }
        // Same leaf churn with a resident count: no root transitions.
        s.arrive(&rt, 0);
        s.depart(&rt, 0);
        assert_eq!(s.cell().load_plain(), before);
        s.depart(&rt, 0);
    }
}
