//! Execution strategies and attempt budgets.

use std::fmt;
use std::str::FromStr;

/// Which execution-path algorithm a data structure runs with (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The original lock-free tree-update template: every operation runs on
    /// the software path using the CAS-based LLX/SCX.
    NonHtm,
    /// Transactional lock elision: sequential code in a transaction that
    /// subscribes to a global lock; the fallback acquires the lock and runs
    /// the same sequential code. Deadlock-free but not lock-free.
    Tle,
    /// Two paths, concurrency allowed: the fast path runs the template
    /// operation in a transaction using the HTM LLX/SCX (instrumented), so
    /// it may run concurrently with fallback-path operations.
    TwoPathCon,
    /// Two paths, concurrency disallowed: uninstrumented sequential fast
    /// path that aborts when the fallback count `F` is non-zero and waits
    /// for `F = 0` before each attempt.
    TwoPathNonCon,
    /// The paper's three-path algorithm: uninstrumented fast path (aborts
    /// if `F != 0`, never waits), instrumented HTM middle path (runs
    /// concurrently with both others), lock-free fallback.
    ThreePath,
}

impl Strategy {
    /// All strategies, in the order the paper's figures present them.
    pub const ALL: [Strategy; 5] = [
        Strategy::NonHtm,
        Strategy::Tle,
        Strategy::TwoPathCon,
        Strategy::TwoPathNonCon,
        Strategy::ThreePath,
    ];

    /// The four series plotted in Figures 14/15 (the paper omits 2-path
    /// non-con from its graphs because it performs like TLE).
    pub const FIGURE_SERIES: [Strategy; 4] = [
        Strategy::NonHtm,
        Strategy::Tle,
        Strategy::TwoPathCon,
        Strategy::ThreePath,
    ];

    /// Whether this strategy guarantees lock-freedom.
    pub fn is_lock_free(self) -> bool {
        !matches!(self, Strategy::Tle)
    }

    /// A stable small-integer encoding, for storing a strategy in an
    /// atomic (the runtime strategy swap used by adaptive execution).
    pub fn code(self) -> u8 {
        match self {
            Strategy::NonHtm => 0,
            Strategy::Tle => 1,
            Strategy::TwoPathCon => 2,
            Strategy::TwoPathNonCon => 3,
            Strategy::ThreePath => 4,
        }
    }

    /// Decodes [`Strategy::code`].
    pub fn from_code(code: u8) -> Option<Strategy> {
        Strategy::ALL.into_iter().find(|s| s.code() == code)
    }

    /// Whether the strategy has a distinct middle path.
    pub fn has_middle_path(self) -> bool {
        matches!(self, Strategy::ThreePath)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::NonHtm => "non-htm",
            Strategy::Tle => "tle",
            Strategy::TwoPathCon => "2-path-con",
            Strategy::TwoPathNonCon => "2-path-noncon",
            Strategy::ThreePath => "3-path",
        };
        f.write_str(s)
    }
}

/// Error parsing a [`Strategy`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrategyError(String);

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown strategy `{}`", self.0)
    }
}

impl std::error::Error for ParseStrategyError {}

impl FromStr for Strategy {
    type Err = ParseStrategyError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "non-htm" | "nonhtm" => Ok(Strategy::NonHtm),
            "tle" => Ok(Strategy::Tle),
            "2-path-con" | "2pc" => Ok(Strategy::TwoPathCon),
            "2-path-noncon" | "2pnc" => Ok(Strategy::TwoPathNonCon),
            "3-path" | "3p" => Ok(Strategy::ThreePath),
            other => Err(ParseStrategyError(other.to_string())),
        }
    }
}

/// Attempt budgets per path.
///
/// The paper's experiments give two-path algorithms (and TLE) up to 20 fast
/// attempts, and the three-path algorithm 10 attempts on each of the fast
/// and middle paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathLimits {
    /// Attempts on the fast path before escalating.
    pub fast: u32,
    /// Attempts on the middle path before the fallback (3-path only).
    pub middle: u32,
}

impl PathLimits {
    /// The paper's budgets for the given strategy.
    pub fn for_strategy(strategy: Strategy) -> Self {
        match strategy {
            Strategy::ThreePath => PathLimits { fast: 10, middle: 10 },
            _ => PathLimits { fast: 20, middle: 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(s.to_string().parse::<Strategy>().unwrap(), s);
        }
        assert!("bogus".parse::<Strategy>().is_err());
    }

    #[test]
    fn display_strings_are_the_paper_labels() {
        let labels: Vec<String> = Strategy::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            labels,
            ["non-htm", "tle", "2-path-con", "2-path-noncon", "3-path"]
        );
    }

    #[test]
    fn parse_accepts_short_aliases() {
        for (alias, want) in [
            ("nonhtm", Strategy::NonHtm),
            ("2pc", Strategy::TwoPathCon),
            ("2pnc", Strategy::TwoPathNonCon),
            ("3p", Strategy::ThreePath),
        ] {
            assert_eq!(alias.parse::<Strategy>().unwrap(), want, "{alias}");
        }
    }

    #[test]
    fn parse_error_names_the_offending_input() {
        let err = "three-path".parse::<Strategy>().unwrap_err();
        assert_eq!(err.to_string(), "unknown strategy `three-path`");
        // Parsing is case-sensitive and exact: Display output with extra
        // whitespace is rejected, not silently trimmed.
        assert!(" tle".parse::<Strategy>().is_err());
        assert!("TLE".parse::<Strategy>().is_err());
    }

    #[test]
    fn code_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(Strategy::from_code(s.code()), Some(s));
        }
        assert_eq!(Strategy::from_code(200), None);
    }

    #[test]
    fn lock_freedom() {
        assert!(!Strategy::Tle.is_lock_free());
        assert!(Strategy::ThreePath.is_lock_free());
        assert!(Strategy::NonHtm.is_lock_free());
    }

    #[test]
    fn paper_budgets() {
        assert_eq!(
            PathLimits::for_strategy(Strategy::ThreePath),
            PathLimits { fast: 10, middle: 10 }
        );
        assert_eq!(PathLimits::for_strategy(Strategy::Tle).fast, 20);
    }
}
