//! Adaptive attempt budgets: scale [`PathLimits`] per epoch from the
//! observed abort mix.
//!
//! The paper fixes the attempt budgets — 10 fast / 10 middle for the
//! three-path algorithm, 20 fast for TLE and the two-path variants — and
//! those numbers are the right *calm-state anchor*: when transactions
//! mostly commit, a deep budget costs nothing (operations succeed on the
//! first attempt) and absorbs bursts. But under a conflict storm almost
//! every fast-path attempt aborts, and each doomed operation burns the
//! whole budget before escalating to a path that can actually finish the
//! work: the fixed budget becomes a per-operation tax of wasted
//! transactions.
//!
//! [`AdaptiveBudgets`] closes the loop using the same per-operation abort
//! information [`PathStats`](crate::PathStats) records. Handles tally each
//! operation's attempts into a shared window; once the window accumulates
//! [`BudgetConfig::epoch_ops`] effective fast-path attempts (≈ operations
//! when calm; faster under a storm), whoever crosses the threshold claims
//! it and re-scales each path's budget from that path's
//! *per-attempt hardware-failure rate* (conflict + capacity + spurious
//! aborts per effective attempt — explicit aborts such as `F != 0` are
//! excluded: they are the escalation protocol working, not wasted work):
//!
//! * rate ≥ [`shrink_fail_rate`](BudgetConfig::shrink_fail_rate) — the
//!   path is storming; halve its budget (floor
//!   [`min_attempts`](BudgetConfig::min_attempts)), so operations stop
//!   paying for attempts that almost surely abort.
//! * rate ≤ [`grow_fail_rate`](BudgetConfig::grow_fail_rate) — commits are
//!   cheap again; double the budget back toward the anchor (cap
//!   `anchor × `[`max_scale`](BudgetConfig::max_scale)).
//! * in between — keep the current budget. The gap between the two
//!   thresholds is the hysteresis band that prevents flapping, exactly
//!   like the sharded layer's strategy controller.
//!
//! A runtime strategy swap ([`ExecCtx::set_strategy`](crate::ExecCtx::set_strategy))
//! re-anchors the budgets at the new strategy's paper values and restarts
//! the window.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use threepath_htm::{AbortCode, CachePadded};

use crate::strategy::{PathLimits, Strategy};

/// Minimum effective attempts a path must show in a window before its
/// budget moves (less is noise, not signal).
const MIN_SAMPLE: u64 = 16;

/// Tuning for [`AdaptiveBudgets`].
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetConfig {
    /// Effective fast-path attempts per decision window. In the calm
    /// state one operation makes one attempt, so this is roughly
    /// "operations per window"; under a storm each operation burns its
    /// whole budget and windows turn correspondingly faster — which is
    /// exactly when faster reaction is wanted.
    pub epoch_ops: u64,
    /// Per-attempt hardware-failure rate at or above which a path's
    /// budget halves.
    pub shrink_fail_rate: f64,
    /// Rate at or below which a path's budget doubles back toward the
    /// anchor. Keep well under
    /// [`shrink_fail_rate`](Self::shrink_fail_rate); the gap is the
    /// hysteresis band.
    pub grow_fail_rate: f64,
    /// Floor for a shrunken budget (≥ 1: a path must keep probing, or it
    /// could never observe the storm ending).
    pub min_attempts: u32,
    /// Budget ceiling as a multiple of the paper anchor (1 = the paper's
    /// 10/10/20 are also the maximum).
    pub max_scale: u32,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig {
            epoch_ops: 1024,
            shrink_fail_rate: 0.75,
            grow_fail_rate: 0.25,
            min_attempts: 1,
            max_scale: 1,
        }
    }
}

impl BudgetConfig {
    /// Checks the tuning for degeneracy. The single source of truth for
    /// what [`AdaptiveBudgets::new`] accepts — config layers (e.g. the
    /// sharded map) call this to surface the same conditions as typed
    /// errors instead of panics.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.epoch_ops == 0 {
            return Err("epoch_ops must be positive");
        }
        // The window counters pack `attempts << 32 | fails`; bounding the
        // window keeps both halves far from carrying into each other.
        if self.epoch_ops > (1 << 30) {
            return Err("epoch_ops must be at most 2^30 (window-counter packing)");
        }
        if self.min_attempts == 0 {
            return Err("min_attempts must be positive");
        }
        if self.max_scale == 0 {
            return Err("max_scale must be positive");
        }
        // partial_cmp rejects NaN thresholds along with inverted ones.
        if self
            .grow_fail_rate
            .partial_cmp(&self.shrink_fail_rate)
            .is_none_or(|o| o != std::cmp::Ordering::Less)
        {
            return Err("grow threshold must sit below shrink threshold (hysteresis)");
        }
        Ok(())
    }
}

/// One operation's attempt tally, recorded by the driver after the
/// operation completes. "Effective" attempts are commits plus hardware
/// aborts; explicitly aborted attempts (lock held, `F != 0`, LLX
/// failures) are protocol signals and do not count against a budget.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpTally {
    /// Effective fast-path attempts.
    pub fast_attempts: u32,
    /// Fast-path hardware aborts (conflict + capacity + spurious).
    pub fast_fails: u32,
    /// Effective middle-path attempts.
    pub middle_attempts: u32,
    /// Middle-path hardware aborts.
    pub middle_fails: u32,
}

impl OpTally {
    /// Whether the operation made any budget-relevant attempt.
    pub fn is_empty(&self) -> bool {
        self.fast_attempts == 0 && self.middle_attempts == 0
    }

    /// Records a committed fast-path attempt.
    pub fn fast_commit(&mut self) {
        self.fast_attempts += 1;
    }

    /// Records an aborted fast-path attempt. Explicit aborts are protocol
    /// signals, not wasted work, and do not count.
    pub fn fast_abort(&mut self, code: AbortCode) {
        if !matches!(code, AbortCode::Explicit(_)) {
            self.fast_attempts += 1;
            self.fast_fails += 1;
        }
    }

    /// Records a committed middle-path attempt.
    pub fn middle_commit(&mut self) {
        self.middle_attempts += 1;
    }

    /// Records an aborted middle-path attempt (explicit aborts excluded,
    /// as on the fast path).
    pub fn middle_abort(&mut self, code: AbortCode) {
        if !matches!(code, AbortCode::Explicit(_)) {
            self.middle_attempts += 1;
            self.middle_fails += 1;
        }
    }
}

fn pack(l: PathLimits) -> u64 {
    (u64::from(l.fast) << 32) | u64::from(l.middle)
}

fn unpack(v: u64) -> PathLimits {
    PathLimits {
        fast: (v >> 32) as u32,
        middle: v as u32,
    }
}

/// Shared per-structure adaptive budget state. Owned by an
/// [`ExecCtx`](crate::ExecCtx); one instance serves every handle of the
/// structure.
#[derive(Debug)]
pub struct AdaptiveBudgets {
    cfg: BudgetConfig,
    /// Read by every operation; padded away from the write-hot windows.
    limits: CachePadded<AtomicU64>,
    /// `attempts << 32 | fails`, one fetch-add per op that used the path
    /// (a window holds at most `epoch_ops × budget` attempts, far below
    /// 2³², so the halves cannot carry into each other). The fast
    /// window's attempt half doubles as the epoch trigger, so the calm
    /// hot path pays exactly one shared RMW per operation.
    win_fast: CachePadded<AtomicU64>,
    win_middle: CachePadded<AtomicU64>,
    epochs: AtomicU64,
    shrinks: AtomicU64,
    grows: AtomicU64,
    /// Decision latch (see the sharded controller): one decision per
    /// window, and `limits` moves atomically with the counters.
    deciding: AtomicBool,
}

impl AdaptiveBudgets {
    /// Fresh budgets anchored at the paper limits for `strategy`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate tuning — exactly the conditions
    /// [`BudgetConfig::validate`] reports.
    pub fn new(cfg: BudgetConfig, strategy: Strategy) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid budget tuning: {e}");
        }
        let anchor = PathLimits::for_strategy(strategy);
        AdaptiveBudgets {
            limits: CachePadded::new(AtomicU64::new(pack(anchor))),
            win_fast: CachePadded::new(AtomicU64::new(0)),
            win_middle: CachePadded::new(AtomicU64::new(0)),
            epochs: AtomicU64::new(0),
            shrinks: AtomicU64::new(0),
            grows: AtomicU64::new(0),
            deciding: AtomicBool::new(false),
            cfg,
        }
    }

    /// The tuning.
    pub fn config(&self) -> &BudgetConfig {
        &self.cfg
    }

    /// The budgets currently in effect.
    pub fn current(&self) -> PathLimits {
        unpack(self.limits.load(Ordering::Acquire))
    }

    /// Decision windows completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Decisions that shrank at least one path's budget.
    pub fn shrinks(&self) -> u64 {
        self.shrinks.load(Ordering::Relaxed)
    }

    /// Decisions that grew at least one path's budget.
    pub fn grows(&self) -> u64 {
        self.grows.load(Ordering::Relaxed)
    }

    /// Re-anchors at `strategy`'s paper limits and restarts the window
    /// (called on a runtime strategy swap — the old strategy's abort mix
    /// says nothing about the new one's budgets).
    pub fn reset(&self, strategy: Strategy) {
        // Take the decision latch: a decision already in flight for the
        // old strategy must not overwrite the re-anchored limits after
        // this store. (An operation that read the old strategy and
        // decides *after* this reset can still move one window toward
        // the old anchor; the next window self-corrects.)
        while self
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        self.limits
            .store(pack(PathLimits::for_strategy(strategy)), Ordering::Release);
        self.win_fast.store(0, Ordering::Relaxed);
        self.win_middle.store(0, Ordering::Relaxed);
        self.deciding.store(false, Ordering::Release);
    }

    /// Accumulates one completed operation's tally and, when either
    /// window's attempts cross the epoch, re-scales the budgets. (The
    /// middle window must be able to trigger on its own: while the
    /// fallback indicator `F` is active, fast-path attempts abort
    /// explicitly and tally nothing, yet the middle path may be storming
    /// — exactly when its budget needs shrinking.)
    ///
    /// Operations with an empty tally (explicit aborts only, or a
    /// strategy arm that made no transactional attempt) cost nothing and
    /// do not advance the windows — with no hardware-abort signal there
    /// is nothing to adapt to.
    pub fn record(&self, strategy: Strategy, tally: &OpTally) {
        let mut crossed = false;
        if tally.middle_attempts > 0 {
            let add = (u64::from(tally.middle_attempts) << 32) | u64::from(tally.middle_fails);
            let attempts = (self.win_middle.fetch_add(add, Ordering::Relaxed) + add) >> 32;
            crossed |= attempts >= self.cfg.epoch_ops;
        }
        if tally.fast_attempts > 0 {
            let add = (u64::from(tally.fast_attempts) << 32) | u64::from(tally.fast_fails);
            let attempts = (self.win_fast.fetch_add(add, Ordering::Relaxed) + add) >> 32;
            crossed |= attempts >= self.cfg.epoch_ops;
        }
        if !crossed {
            return;
        }
        // Claim the window; racing claimants swap out a near-empty window
        // and bail on the size guard.
        let fast_w = self.win_fast.swap(0, Ordering::Relaxed);
        let middle_w = self.win_middle.swap(0, Ordering::Relaxed);
        let (fa, ff) = (fast_w >> 32, fast_w & u64::from(u32::MAX));
        let (ma, mf) = (middle_w >> 32, middle_w & u64::from(u32::MAX));
        if fa < self.cfg.epoch_ops / 2 && ma < self.cfg.epoch_ops / 2 {
            return;
        }
        if self
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let anchor = PathLimits::for_strategy(strategy);
        let cur = self.current();
        let next = PathLimits {
            fast: self.scale_path(cur.fast, anchor.fast, fa, ff),
            middle: self.scale_path(cur.middle, anchor.middle, ma, mf),
        };
        if next != cur {
            self.limits.store(pack(next), Ordering::Release);
            if next.fast < cur.fast || next.middle < cur.middle {
                self.shrinks.fetch_add(1, Ordering::Relaxed);
            }
            if next.fast > cur.fast || next.middle > cur.middle {
                self.grows.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.epochs.fetch_add(1, Ordering::Relaxed);
        self.deciding.store(false, Ordering::Release);
    }

    /// One path's next budget from its window failure rate. `anchor == 0`
    /// means the strategy has no such path.
    fn scale_path(&self, cur: u32, anchor: u32, attempts: u64, fails: u64) -> u32 {
        if anchor == 0 {
            return 0;
        }
        if attempts < MIN_SAMPLE {
            // No signal — the path went unused this window (e.g. the
            // middle path while the fast path commits everything). An
            // unused budget costs nothing, so drift it back up to the
            // calm-state anchor; it re-opens at full depth when needed.
            return if cur < anchor {
                cur.saturating_mul(2).min(anchor)
            } else {
                cur
            };
        }
        let rate = fails as f64 / attempts as f64;
        if rate >= self.cfg.shrink_fail_rate {
            (cur / 2).max(self.cfg.min_attempts)
        } else if rate <= self.cfg.grow_fail_rate {
            let cap = anchor
                .saturating_mul(self.cfg.max_scale)
                .max(self.cfg.min_attempts);
            cur.saturating_mul(2).min(cap)
        } else {
            cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budgets(epoch_ops: u64) -> AdaptiveBudgets {
        AdaptiveBudgets::new(
            BudgetConfig {
                epoch_ops,
                ..BudgetConfig::default()
            },
            Strategy::ThreePath,
        )
    }

    /// Pushes one window of `n` identical tallies.
    fn push(b: &AdaptiveBudgets, strategy: Strategy, n: u64, tally: OpTally) {
        for _ in 0..n {
            b.record(strategy, &tally);
        }
    }

    fn storm_tally(attempts: u32) -> OpTally {
        OpTally {
            fast_attempts: attempts,
            fast_fails: attempts,
            middle_attempts: attempts,
            middle_fails: attempts,
        }
    }

    fn calm_tally() -> OpTally {
        OpTally {
            fast_attempts: 1,
            fast_fails: 0,
            middle_attempts: 1,
            middle_fails: 0,
        }
    }

    #[test]
    fn starts_at_the_paper_anchor() {
        let b = budgets(64);
        assert_eq!(b.current(), PathLimits::for_strategy(Strategy::ThreePath));
        let tle = AdaptiveBudgets::new(BudgetConfig::default(), Strategy::Tle);
        assert_eq!(tle.current().fast, 20);
        assert_eq!(tle.current().middle, 0);
    }

    #[test]
    fn storms_shrink_to_the_floor_and_calm_grows_back() {
        let b = budgets(64);
        // Under a storm each op burns many attempts, so windows turn fast
        // and a single 64-push block is enough to halve down to the floor.
        push(&b, Strategy::ThreePath, 64, storm_tally(10));
        assert_eq!(b.current(), PathLimits { fast: 1, middle: 1 });
        assert!(b.shrinks() >= 3, "10 -> 5 -> 2 -> 1");
        // Calm windows (one attempt per op) double back up one window per
        // 64-push block, capped at the anchor.
        for expect_fast in [2u32, 4, 8, 10, 10] {
            push(&b, Strategy::ThreePath, 64, calm_tally());
            assert_eq!(b.current().fast, expect_fast);
        }
        assert_eq!(b.current(), PathLimits::for_strategy(Strategy::ThreePath));
        assert!(b.grows() >= 4);
    }

    #[test]
    fn middle_only_storm_still_triggers_adaptation() {
        // While F is active the fast path aborts explicitly (no effective
        // attempts), but a storming middle path must still shrink: the
        // middle window triggers decisions on its own.
        let b = budgets(64);
        let middle_storm = OpTally {
            fast_attempts: 0,
            fast_fails: 0,
            middle_attempts: 10,
            middle_fails: 10,
        };
        push(&b, Strategy::ThreePath, 64, middle_storm);
        assert_eq!(b.current().middle, 1, "middle budget must hit the floor");
        assert_eq!(
            b.current().fast,
            10,
            "no fast-path signal: the fast budget stays anchored"
        );
    }

    #[test]
    fn hysteresis_band_keeps_the_current_budget() {
        let b = budgets(64);
        push(&b, Strategy::ThreePath, 64, storm_tally(10));
        let shrunk = b.current();
        assert!(shrunk.fast < 10);
        // 50% failure rate sits between grow (25%) and shrink (75%).
        let mid = OpTally {
            fast_attempts: 2,
            fast_fails: 1,
            middle_attempts: 2,
            middle_fails: 1,
        };
        push(&b, Strategy::ThreePath, 64, mid);
        assert_eq!(b.current(), shrunk, "mid-band windows must not move budgets");
    }

    #[test]
    fn explicit_aborts_do_not_shrink() {
        // Operations that only saw explicit aborts record no effective
        // attempts: no signal, no window turnover, budgets stay put.
        let b = budgets(64);
        push(&b, Strategy::ThreePath, 200, OpTally::default());
        assert_eq!(b.current(), PathLimits::for_strategy(Strategy::ThreePath));
        assert_eq!(b.epochs(), 0, "empty tallies advance nothing");
    }

    #[test]
    fn reset_reanchors_on_strategy_swap() {
        let b = budgets(64);
        push(&b, Strategy::ThreePath, 64, storm_tally(10));
        assert!(b.current().fast < 10);
        b.reset(Strategy::Tle);
        assert_eq!(b.current(), PathLimits::for_strategy(Strategy::Tle));
    }

    #[test]
    fn max_scale_allows_growth_past_the_anchor() {
        let b = AdaptiveBudgets::new(
            BudgetConfig {
                epoch_ops: 64,
                max_scale: 2,
                ..BudgetConfig::default()
            },
            Strategy::ThreePath,
        );
        for _ in 0..4 {
            push(&b, Strategy::ThreePath, 64, calm_tally());
        }
        assert_eq!(b.current().fast, 20, "2x anchor cap");
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_thresholds_rejected() {
        AdaptiveBudgets::new(
            BudgetConfig {
                shrink_fail_rate: 0.2,
                grow_fail_rate: 0.8,
                ..BudgetConfig::default()
            },
            Strategy::ThreePath,
        );
    }
}
