//! Adaptive attempt budgets: probe a ladder of [`PathLimits`] arms and
//! keep the one that measures fastest.
//!
//! The paper fixes the attempt budgets — 10 fast / 10 middle for the
//! three-path algorithm, 20 fast for TLE and the two-path variants — and
//! those numbers are the right *calm-state anchor*: when transactions
//! mostly commit, a deep budget costs nothing (operations succeed on the
//! first attempt) and absorbs bursts. But under a storm almost every
//! fast-path attempt aborts, and each doomed operation burns the whole
//! budget before escalating to a path that can actually finish the work.
//!
//! Earlier revisions closed the loop with abort-rate thresholds (halve
//! above a shrink rate, double below a grow rate) — two platform guesses
//! that had to be hand-tuned per machine. [`AdaptiveBudgets`] now
//! delegates the decision to the contention manager
//! ([`crate::controller`]): the candidate budgets form a fixed ladder of
//! *arms* between [`BudgetConfig::min_attempts`] and
//! `anchor × `[`BudgetConfig::max_scale`], a
//! [`ProbingController`] tries each arm for a decision window, and the
//! arm whose window measured the highest throughput (completed
//! operations per wall-second, or per attempt when the clock is
//! disabled) keeps the budget. No rates, no thresholds — whichever
//! budget is empirically faster on this machine, under this workload,
//! wins.
//!
//! The hot path is unchanged from the threshold era: handles tally each
//! operation's effective attempts into packed per-path windows (one
//! relaxed RMW per path used, plus one for the op count), and whoever
//! crosses [`BudgetConfig::epoch_ops`] claims the window under the
//! `deciding` latch and feeds it to the controller.
//!
//! A runtime strategy swap ([`ExecCtx::set_strategy`](crate::ExecCtx::set_strategy))
//! re-anchors the ladder at the new strategy's paper values and restarts
//! probing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use threepath_htm::{AbortCode, CachePadded};

use crate::controller::{Controller, ProbeConfig, ProbingController, Window};
use crate::strategy::{PathLimits, Strategy};

/// The budget ladder: each arm scales the paper anchor by `num/den`
/// (floored at [`BudgetConfig::min_attempts`]); the last arm additionally
/// multiplies by [`BudgetConfig::max_scale`]. Arm [`ANCHOR_ARM`] is the
/// paper budget itself — probing starts there.
const ARM_FRACS: [(u32, u32); 5] = [(0, 1), (1, 4), (1, 2), (1, 1), (1, 1)];

/// Index of the paper-anchor arm in [`ARM_FRACS`].
const ANCHOR_ARM: usize = 3;

/// Index of the over-anchor arm (`anchor × max_scale`).
const WIDE_ARM: usize = 4;

/// Attempt-equivalent cost charged for an operation that exhausted its
/// transactional attempts and completed on the serialized fallback, when
/// scoring windows without wall-clock: the fallback serializes against
/// every concurrent operation, which a raw attempt count cannot see.
const FALLBACK_WEIGHT: u64 = 16;

/// Tuning for [`AdaptiveBudgets`].
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetConfig {
    /// Effective fast- or middle-path attempts per decision window. In
    /// the calm state one operation makes one attempt, so this is
    /// roughly "operations per window"; under a storm each operation
    /// burns its whole budget and windows turn correspondingly faster —
    /// which is exactly when faster probing is wanted. Must be at least
    /// 2: a one-attempt window carries no comparative signal, and the
    /// claim guards degenerate (`epoch_ops / 2 == 0` admits empty
    /// windows).
    pub epoch_ops: u64,
    /// Floor for the smallest ladder arm (≥ 1: a path must keep probing
    /// the hardware, or no window could ever measure it recovering).
    pub min_attempts: u32,
    /// Ceiling of the widest ladder arm as a multiple of the paper
    /// anchor (1 = the paper's 10/10/20 are also the maximum).
    pub max_scale: u32,
    /// Probe/settle cadence for the controller.
    pub probe: ProbeConfig,
    /// Score windows by wall-clock throughput (completed ops per
    /// second). When `false` the score is completed ops per attempt —
    /// deterministic, and preferable where the clock is unavailable or
    /// untrustworthy.
    pub wall_clock: bool,
}

impl Default for BudgetConfig {
    fn default() -> Self {
        BudgetConfig {
            epoch_ops: 1024,
            min_attempts: 1,
            max_scale: 1,
            probe: ProbeConfig::default(),
            wall_clock: true,
        }
    }
}

impl BudgetConfig {
    /// Checks the tuning for degeneracy. The single source of truth for
    /// what [`AdaptiveBudgets::new`] accepts — config layers (e.g. the
    /// sharded map) call this to surface the same conditions as typed
    /// errors instead of panics.
    pub fn validate(&self) -> Result<(), &'static str> {
        // A 1-op window would make the size guard `< epoch_ops / 2`
        // vacuous and leave the controller comparing empty windows.
        if self.epoch_ops < 2 {
            return Err("epoch_ops must be at least 2");
        }
        // The window counters pack `attempts << 32 | fails`; bounding the
        // window keeps both halves far from carrying into each other.
        if self.epoch_ops > (1 << 30) {
            return Err("epoch_ops must be at most 2^30 (window-counter packing)");
        }
        if self.min_attempts == 0 {
            return Err("min_attempts must be positive");
        }
        if self.max_scale == 0 {
            return Err("max_scale must be positive");
        }
        self.probe.validate()
    }

    /// The budget ladder arm `arm` for `strategy`'s paper anchor.
    fn arm_limits(&self, strategy: Strategy, arm: usize) -> PathLimits {
        let anchor = PathLimits::for_strategy(strategy);
        let scale = |base: u32| -> u32 {
            if base == 0 {
                // The strategy has no such path; every arm keeps it shut.
                return 0;
            }
            let (num, den) = ARM_FRACS[arm];
            let mut v = if num == 0 { 0 } else { base * num / den };
            if arm == WIDE_ARM {
                v = base.saturating_mul(self.max_scale);
            }
            v.max(self.min_attempts)
        };
        PathLimits {
            fast: scale(anchor.fast),
            middle: scale(anchor.middle),
        }
    }
}

/// One operation's attempt tally, recorded by the driver after the
/// operation completes. "Effective" attempts are commits plus hardware
/// aborts; explicitly aborted attempts (lock held, `F != 0`, LLX
/// failures) are protocol signals and do not count against a budget.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OpTally {
    /// Effective fast-path attempts.
    pub fast_attempts: u32,
    /// Fast-path hardware aborts (conflict + capacity + spurious).
    pub fast_fails: u32,
    /// Effective middle-path attempts.
    pub middle_attempts: u32,
    /// Middle-path hardware aborts.
    pub middle_fails: u32,
}

impl OpTally {
    /// Whether the operation made any budget-relevant attempt.
    pub fn is_empty(&self) -> bool {
        self.fast_attempts == 0 && self.middle_attempts == 0
    }

    /// Records a committed fast-path attempt.
    pub fn fast_commit(&mut self) {
        self.fast_attempts += 1;
    }

    /// Records an aborted fast-path attempt. Explicit aborts are protocol
    /// signals, not wasted work, and do not count.
    pub fn fast_abort(&mut self, code: AbortCode) {
        if !matches!(code, AbortCode::Explicit(_)) {
            self.fast_attempts += 1;
            self.fast_fails += 1;
        }
    }

    /// Records a committed middle-path attempt.
    pub fn middle_commit(&mut self) {
        self.middle_attempts += 1;
    }

    /// Records an aborted middle-path attempt (explicit aborts excluded,
    /// as on the fast path).
    pub fn middle_abort(&mut self, code: AbortCode) {
        if !matches!(code, AbortCode::Explicit(_)) {
            self.middle_attempts += 1;
            self.middle_fails += 1;
        }
    }
}

fn pack(l: PathLimits) -> u64 {
    (u64::from(l.fast) << 32) | u64::from(l.middle)
}

fn unpack(v: u64) -> PathLimits {
    PathLimits {
        fast: (v >> 32) as u32,
        middle: v as u32,
    }
}

/// Shared per-structure adaptive budget state. Owned by an
/// [`ExecCtx`](crate::ExecCtx); one instance serves every handle of the
/// structure.
#[derive(Debug)]
pub struct AdaptiveBudgets {
    cfg: BudgetConfig,
    /// The contention manager choosing a ladder arm.
    ctl: ProbingController,
    /// Read by every operation; padded away from the write-hot windows.
    limits: CachePadded<AtomicU64>,
    /// `attempts << 32 | fails`, one fetch-add per op that used the path.
    /// `fails ≤ attempts` is enforced at the push (see [`Self::record`]),
    /// and windows are claimed when the attempt half crosses the epoch
    /// (bounded at 2³⁰), so neither half can carry into the other.
    win_fast: CachePadded<AtomicU64>,
    win_middle: CachePadded<AtomicU64>,
    /// Operations completed in the window (the controller's `ops`).
    win_ops: CachePadded<AtomicU64>,
    /// Window start, nanoseconds since `base` (wall-clock scoring).
    win_start: AtomicU64,
    base: Instant,
    epochs: AtomicU64,
    /// Decision latch (see the sharded controller): the claimant takes it
    /// *before* swapping the windows, so a racing claimant swaps nothing
    /// and no counts are lost, and `limits` moves atomically with the
    /// counters.
    deciding: AtomicBool,
}

impl AdaptiveBudgets {
    /// Fresh budgets anchored at the paper limits for `strategy`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate tuning — exactly the conditions
    /// [`BudgetConfig::validate`] reports.
    pub fn new(cfg: BudgetConfig, strategy: Strategy) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid budget tuning: {e}");
        }
        let anchor = cfg.arm_limits(strategy, ANCHOR_ARM);
        let ctl = ProbingController::new(ARM_FRACS.len(), ANCHOR_ARM, cfg.probe);
        AdaptiveBudgets {
            ctl,
            limits: CachePadded::new(AtomicU64::new(pack(anchor))),
            win_fast: CachePadded::new(AtomicU64::new(0)),
            win_middle: CachePadded::new(AtomicU64::new(0)),
            win_ops: CachePadded::new(AtomicU64::new(0)),
            win_start: AtomicU64::new(0),
            base: Instant::now(),
            epochs: AtomicU64::new(0),
            deciding: AtomicBool::new(false),
            cfg,
        }
    }

    /// The tuning.
    pub fn config(&self) -> &BudgetConfig {
        &self.cfg
    }

    /// The budgets currently in effect.
    pub fn current(&self) -> PathLimits {
        unpack(self.limits.load(Ordering::Acquire))
    }

    /// The contention manager behind the ladder (diagnostics).
    pub fn controller(&self) -> &dyn Controller {
        &self.ctl
    }

    /// Decision windows completed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Times the chosen ladder arm changed (probe excursions included).
    pub fn switches(&self) -> u64 {
        self.ctl.switches()
    }

    /// Completed probe passes over the whole ladder.
    pub fn passes(&self) -> u64 {
        self.ctl.passes()
    }

    /// The budgets probing has settled on for `strategy` — the incumbent
    /// arm's limits, independent of any probe excursion in flight.
    /// [`Self::current`] may transiently differ while the controller
    /// measures another arm; this is the decision.
    pub fn settled_limits(&self, strategy: Strategy) -> PathLimits {
        self.cfg.arm_limits(strategy, self.ctl.incumbent())
    }

    /// Re-anchors at `strategy`'s paper limits and restarts probing
    /// (called on a runtime strategy swap — the old strategy's windows
    /// say nothing about the new one's budgets).
    pub fn reset(&self, strategy: Strategy) {
        // Take the decision latch: a decision already in flight for the
        // old strategy must not overwrite the re-anchored limits after
        // this store. (An operation that read the old strategy and
        // decides *after* this reset can still move one window toward
        // the old anchor; the next window self-corrects.)
        while self
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        self.ctl.reset(ANCHOR_ARM);
        self.limits.store(
            pack(self.cfg.arm_limits(strategy, ANCHOR_ARM)),
            Ordering::Release,
        );
        self.win_fast.store(0, Ordering::Relaxed);
        self.win_middle.store(0, Ordering::Relaxed);
        self.win_ops.store(0, Ordering::Relaxed);
        self.win_start
            .store(self.base.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.deciding.store(false, Ordering::Release);
    }

    /// Accumulates one completed operation's tally and, when either
    /// window's attempts cross the epoch, claims the window and feeds it
    /// to the probing controller. (The middle window must be able to
    /// trigger on its own: while the fallback indicator `F` is active,
    /// fast-path attempts abort explicitly and tally nothing, yet the
    /// middle path may be storming — exactly when its window matters.)
    ///
    /// Operations with an empty tally (explicit aborts only, or a
    /// strategy arm that made no transactional attempt) cost nothing and
    /// do not advance the windows — with no attempt signal there is
    /// nothing to compare.
    pub fn record(&self, strategy: Strategy, tally: &OpTally) {
        if tally.is_empty() {
            return;
        }
        // Defend the packed counters: a malformed tally claiming more
        // fails than attempts would eventually carry the fail half into
        // the attempt half of the window word. Clamping at the push keeps
        // the invariant `fails ≤ attempts`, which (with the epoch-bounded
        // attempt half) bounds both halves below 2³².
        let ff = tally.fast_fails.min(tally.fast_attempts);
        let mf = tally.middle_fails.min(tally.middle_attempts);
        debug_assert_eq!(ff, tally.fast_fails, "tally fails exceed attempts");
        debug_assert_eq!(mf, tally.middle_fails, "tally fails exceed attempts");
        let mut crossed = false;
        if tally.middle_attempts > 0 {
            let add = (u64::from(tally.middle_attempts) << 32) | u64::from(mf);
            let attempts = (self.win_middle.fetch_add(add, Ordering::Relaxed) + add) >> 32;
            crossed |= attempts >= self.cfg.epoch_ops;
        }
        if tally.fast_attempts > 0 {
            let add = (u64::from(tally.fast_attempts) << 32) | u64::from(ff);
            let attempts = (self.win_fast.fetch_add(add, Ordering::Relaxed) + add) >> 32;
            crossed |= attempts >= self.cfg.epoch_ops;
        }
        self.win_ops.fetch_add(1, Ordering::Relaxed);
        if !crossed {
            return;
        }
        // Claim the window under the latch: the single claimant swaps
        // the counters, so a racing claimant discards nothing — its
        // pushes stay in place for the next window.
        if self
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let fast_w = self.win_fast.swap(0, Ordering::Relaxed);
        let middle_w = self.win_middle.swap(0, Ordering::Relaxed);
        let ops_w = self.win_ops.swap(0, Ordering::Relaxed);
        let now = self.base.elapsed().as_nanos() as u64;
        let start = self.win_start.swap(now, Ordering::Relaxed);
        let (fa, ff) = (fast_w >> 32, fast_w & u64::from(u32::MAX));
        let (ma, mf) = (middle_w >> 32, middle_w & u64::from(u32::MAX));
        // Size guards: a second claimant racing in right behind the swap
        // sees a near-empty window — no signal, no decision. `ops_w == 0`
        // also covers the degenerate all-fails window.
        if ops_w == 0 || (fa < self.cfg.epoch_ops / 2 && ma < self.cfg.epoch_ops / 2) {
            self.deciding.store(false, Ordering::Release);
            return;
        }
        // Operations that committed transactionally vs. ones that fell
        // through to the serialized fallback: the latter carry a weight
        // the raw attempt count cannot see (they serialize the world).
        let commits = (fa - ff) + (ma - mf);
        let fell_back = ops_w.saturating_sub(commits);
        let w = Window {
            ops: ops_w,
            attempts: fa + ma + fell_back * FALLBACK_WEIGHT,
            conflicts: ff + mf,
            other: 0,
            nanos: if self.cfg.wall_clock {
                now.saturating_sub(start)
            } else {
                0
            },
        };
        let arm = self.ctl.arm();
        self.ctl.observe(arm, w);
        self.limits.store(
            pack(self.cfg.arm_limits(strategy, self.ctl.arm())),
            Ordering::Release,
        );
        self.epochs.fetch_add(1, Ordering::Relaxed);
        self.deciding.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(epoch_ops: u64) -> BudgetConfig {
        BudgetConfig {
            epoch_ops,
            // Deterministic scores: completed ops per attempt.
            wall_clock: false,
            ..BudgetConfig::default()
        }
    }

    fn budgets(epoch_ops: u64) -> AdaptiveBudgets {
        AdaptiveBudgets::new(test_config(epoch_ops), Strategy::ThreePath)
    }

    /// Pushes `n` identical tallies.
    fn push(b: &AdaptiveBudgets, strategy: Strategy, n: u64, tally: OpTally) {
        for _ in 0..n {
            b.record(strategy, &tally);
        }
    }

    fn calm_tally() -> OpTally {
        OpTally {
            fast_attempts: 1,
            fast_fails: 0,
            middle_attempts: 0,
            middle_fails: 0,
        }
    }

    /// A storm tally parameterized by the *current* budget: the op burns
    /// the whole fast budget failing, then completes off-path.
    fn storm_tally(limits: PathLimits) -> OpTally {
        OpTally {
            fast_attempts: limits.fast,
            fast_fails: limits.fast,
            middle_attempts: limits.middle,
            middle_fails: limits.middle,
        }
    }

    #[test]
    fn starts_at_the_paper_anchor() {
        let b = budgets(64);
        assert_eq!(b.current(), PathLimits::for_strategy(Strategy::ThreePath));
        let tle = AdaptiveBudgets::new(test_config(1024), Strategy::Tle);
        assert_eq!(tle.current().fast, 20);
        assert_eq!(tle.current().middle, 0);
    }

    #[test]
    fn ladder_spans_floor_to_anchor() {
        let cfg = test_config(64);
        let arms: Vec<PathLimits> = (0..ARM_FRACS.len())
            .map(|i| cfg.arm_limits(Strategy::ThreePath, i))
            .collect();
        assert_eq!(arms[0], PathLimits { fast: 1, middle: 1 });
        assert_eq!(arms[ANCHOR_ARM], PathLimits::for_strategy(Strategy::ThreePath));
        // Budgets never fall below the floor or rise above the cap.
        for a in &arms {
            assert!(a.fast >= 1 && a.fast <= 10);
            assert!(a.middle >= 1 && a.middle <= 10);
        }
        // A strategy without a middle path keeps it shut on every arm.
        for i in 0..ARM_FRACS.len() {
            assert_eq!(cfg.arm_limits(Strategy::Tle, i).middle, 0);
        }
    }

    #[test]
    fn probing_converges_on_the_floor_under_a_storm() {
        // Every op burns its whole fast budget and completes elsewhere:
        // ops/attempt is maximal on the smallest arm, so probing must
        // land the budget on the floor.
        let b = budgets(64);
        for _ in 0..6000 {
            b.record(Strategy::ThreePath, &storm_tally(b.current()));
        }
        assert_eq!(
            b.settled_limits(Strategy::ThreePath),
            PathLimits { fast: 1, middle: 1 },
            "storm windows must drive the settled budget to the floor arm"
        );
        assert!(b.epochs() > 0);
        assert!(b.passes() >= 1);
    }

    #[test]
    fn calm_windows_stay_anchored() {
        // One attempt, one commit: every arm scores identically, so the
        // hold-back margin keeps the anchor through whole probe passes.
        let b = budgets(64);
        push(&b, Strategy::ThreePath, 4096, calm_tally());
        assert!(b.passes() >= 2, "probing must keep cycling");
        assert_eq!(
            b.settled_limits(Strategy::ThreePath),
            PathLimits::for_strategy(Strategy::ThreePath),
            "calm ties must leave the incumbent anchor in place"
        );
    }

    #[test]
    fn middle_only_storm_still_turns_windows() {
        // While F is active the fast path aborts explicitly (no effective
        // attempts); the middle window must trigger decisions on its own.
        let b = budgets(64);
        let middle_storm = OpTally {
            fast_attempts: 0,
            fast_fails: 0,
            middle_attempts: 10,
            middle_fails: 10,
        };
        push(&b, Strategy::ThreePath, 256, middle_storm);
        assert!(b.epochs() > 0, "middle-only windows must claim epochs");
    }

    #[test]
    fn explicit_aborts_do_not_advance_windows() {
        // Operations that only saw explicit aborts record no effective
        // attempts: no signal, no window turnover, budgets stay put.
        let b = budgets(64);
        push(&b, Strategy::ThreePath, 200, OpTally::default());
        assert_eq!(b.current(), PathLimits::for_strategy(Strategy::ThreePath));
        assert_eq!(b.epochs(), 0, "empty tallies advance nothing");
    }

    #[test]
    fn reset_reanchors_on_strategy_swap() {
        let b = budgets(64);
        for _ in 0..2000 {
            b.record(Strategy::ThreePath, &storm_tally(b.current()));
        }
        b.reset(Strategy::Tle);
        assert_eq!(b.current(), PathLimits::for_strategy(Strategy::Tle));
    }

    #[test]
    fn max_scale_widens_the_top_arm() {
        let cfg = BudgetConfig {
            max_scale: 2,
            ..test_config(64)
        };
        assert_eq!(cfg.arm_limits(Strategy::ThreePath, WIDE_ARM).fast, 20);
        assert_eq!(cfg.arm_limits(Strategy::Tle, WIDE_ARM).fast, 40);
    }

    #[test]
    fn fail_half_cannot_carry_into_the_attempt_half() {
        // Regression: a malformed tally with more fails than attempts
        // used to accumulate `fails` past the attempt half's epoch
        // trigger, eventually carrying into — and corrupting — the
        // attempt count. The push now clamps `fails ≤ attempts`.
        let b = budgets(64);
        let malformed = OpTally {
            fast_attempts: 1,
            fast_fails: u32::MAX,
            middle_attempts: 0,
            middle_fails: 0,
        };
        // Debug builds assert on the malformed tally; the release-mode
        // behavior (clamping) is what this regression test pins down.
        if cfg!(debug_assertions) {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                b.record(Strategy::ThreePath, &malformed);
            }));
            assert!(r.is_err(), "debug builds reject fails > attempts loudly");
            return;
        }
        for _ in 0..128 {
            b.record(Strategy::ThreePath, &malformed);
        }
        // Pre-fix, the fail half carries ~2^32 per push into the attempt
        // half, the claimed "attempts" explode, and the window feeds the
        // controller garbage. Post-fix the windows stay coherent and the
        // budget stays on the ladder.
        let cur = b.current();
        assert!(
            (1..=10).contains(&cur.fast),
            "budget left the ladder: {cur:?}"
        );
        assert!(b.epochs() >= 1, "claims must still happen");
    }

    #[test]
    fn tiny_epoch_is_rejected() {
        // Regression: epoch_ops = 1 degenerates the claim size guard
        // (`epoch_ops / 2 == 0`), letting racing claimants decide on
        // empty windows. The validator now requires at least 2.
        assert!(BudgetConfig {
            epoch_ops: 1,
            ..BudgetConfig::default()
        }
        .validate()
        .is_err());
        assert!(BudgetConfig {
            epoch_ops: 0,
            ..BudgetConfig::default()
        }
        .validate()
        .is_err());
        assert!(BudgetConfig {
            epoch_ops: 2,
            ..BudgetConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_epoch_panics_at_construction() {
        AdaptiveBudgets::new(
            BudgetConfig {
                epoch_ops: 1,
                ..BudgetConfig::default()
            },
            Strategy::ThreePath,
        );
    }

    #[test]
    #[should_panic(expected = "probe_windows")]
    fn degenerate_probe_tuning_rejected() {
        AdaptiveBudgets::new(
            BudgetConfig {
                probe: ProbeConfig {
                    probe_windows: 0,
                    ..ProbeConfig::default()
                },
                ..BudgetConfig::default()
            },
            Strategy::ThreePath,
        );
    }
}
