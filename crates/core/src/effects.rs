//! Deferred side effects of transactional attempts.
//!
//! Code running inside a transaction must not retire nodes or release
//! SCX-record references — the attempt may abort, leaving the structure
//! untouched. Instead it records the intents in an [`Effects`] buffer; the
//! attempt wrapper applies them only after the transaction commits.
//! Conversely, nodes *allocated* inside a transaction are tracked so an
//! abort can free them (an aborted transaction published nothing, so they
//! are provably unreachable — which is also why the undo path may return
//! them to the thread's node pool immediately, with no grace period).

use threepath_llxscx::{ScxEngine, ScxThread};
use threepath_reclaim::ReclaimCtx;

/// A type-erased action on a pointer that needs the thread's reclamation
/// context (to reach its node pool).
type CtxAction = unsafe fn(*mut u8, &ReclaimCtx);

unsafe fn retire_node_erased<T: Send>(p: *mut u8, ctx: &ReclaimCtx) {
    // SAFETY: forwarded from `defer_retire`'s contract.
    unsafe { ctx.retire_node(p as *mut T) };
}

unsafe fn return_node_erased<T: Send>(p: *mut u8, ctx: &ReclaimCtx) {
    // SAFETY: forwarded from `alloc` tracking — the node was never
    // published (the attempt aborted or explicitly un-published it).
    unsafe { ctx.dealloc_unpublished(p as *mut T) };
}

/// Buffered post-commit (and post-abort) actions for one transactional
/// attempt.
#[derive(Default)]
pub struct Effects {
    retire: Vec<(*mut u8, CtxAction)>,
    release_infos: Vec<u64>,
    allocs: Vec<(*mut u8, CtxAction)>,
}

impl Effects {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defers retiring `ptr` (a node that the transaction unlinks) until
    /// the transaction commits; the retirement goes through
    /// [`ReclaimCtx::retire_node`], so pooled nodes recycle.
    ///
    /// # Safety
    ///
    /// Same contract as [`ReclaimCtx::retire_node`], holding at the time
    /// [`Effects::commit`] runs.
    pub unsafe fn defer_retire<T: Send>(&mut self, ptr: *mut T) {
        self.retire.push((ptr as *mut u8, retire_node_erased::<T>));
    }

    /// Defers releasing the install reference of a replaced `info` value
    /// (see [`ScxEngine::release_replaced`]).
    pub fn defer_release_info(&mut self, info: u64) {
        self.release_infos.push(info);
    }

    /// Allocates a node through `ctx` (pooled when the domain pools) and
    /// tracks the allocation: if the attempt aborts, the node returns to
    /// the pool (nothing was published); if it commits, the node has been
    /// linked into the structure and is kept.
    pub fn alloc<T: Send>(&mut self, ctx: &ReclaimCtx, val: T) -> *mut T {
        let p = ctx.alloc(val);
        self.allocs.push((p as *mut u8, return_node_erased::<T>));
        p
    }

    /// Stops tracking an allocation made with [`Self::alloc`] and frees it
    /// now (back to the pool). For paths that decide *within* the attempt
    /// not to publish a node.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from [`Self::alloc`] on this buffer (allocated
    /// through `ctx`'s domain) and must not have been published.
    pub unsafe fn free_unpublished<T: Send>(&mut self, ctx: &ReclaimCtx, ptr: *mut T) {
        let raw = ptr as *mut u8;
        if let Some(i) = self.allocs.iter().position(|(p, _)| *p == raw) {
            let (p, ret) = self.allocs.swap_remove(i);
            // SAFETY: tracked allocation, unpublished per contract.
            unsafe { ret(p, ctx) };
        }
    }

    /// Whether nothing was deferred or tracked.
    pub fn is_empty(&self) -> bool {
        self.retire.is_empty() && self.release_infos.is_empty() && self.allocs.is_empty()
    }

    /// Applies the deferred actions after a successful commit. Tracked
    /// allocations are simply released from tracking (they are now owned by
    /// the structure).
    pub fn commit(self, eng: &ScxEngine, th: &ScxThread) {
        for (ptr, retire) in &self.retire {
            // SAFETY: per defer_retire's contract; the transaction that
            // unlinked these nodes has committed.
            unsafe { retire(*ptr, &th.reclaim) };
        }
        eng.release_replaced(th, &self.release_infos);
        // self.allocs dropped without freeing: nodes are published.
    }

    /// Cleans up after an abort: returns tracked allocations to the pool
    /// (the transaction had no effect, so they were never published and
    /// need no grace period) and discards deferred retirements/releases
    /// (the nodes are still linked).
    pub fn abort_cleanup(&mut self, ctx: &ReclaimCtx) {
        self.retire.clear();
        self.release_infos.clear();
        for (ptr, ret) in self.allocs.drain(..) {
            // SAFETY: allocated by `alloc` and unpublished (attempt aborted).
            unsafe { ret(ptr, ctx) };
        }
    }
}

impl std::fmt::Debug for Effects {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Effects")
            .field("retire", &self.retire.len())
            .field("release_infos", &self.release_infos.len())
            .field("allocs", &self.allocs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use threepath_reclaim::{Domain, PoolConfig, ReclaimMode};

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn ctx() -> ReclaimCtx {
        Domain::register(&Arc::new(Domain::new(ReclaimMode::Epoch)))
    }

    #[test]
    fn abort_cleanup_frees_allocs_and_discards_retires() {
        let ctx = ctx();
        let count = Arc::new(AtomicUsize::new(0));
        let mut e = Effects::new();
        let _a = e.alloc(&ctx, DropCounter(count.clone()));
        let r = Box::into_raw(Box::new(7u64));
        unsafe { e.defer_retire(r) };
        e.defer_release_info(0);
        e.abort_cleanup(&ctx);
        assert!(e.is_empty());
        assert_eq!(count.load(Ordering::Relaxed), 1, "alloc freed on abort");
        // The deferred retire must NOT have freed r.
        drop(unsafe { Box::from_raw(r) });
    }

    #[test]
    fn free_unpublished_releases_single_alloc() {
        let ctx = ctx();
        let count = Arc::new(AtomicUsize::new(0));
        let mut e = Effects::new();
        let a = e.alloc(&ctx, DropCounter(count.clone()));
        let _b = e.alloc(&ctx, DropCounter(count.clone()));
        unsafe { e.free_unpublished(&ctx, a) };
        assert_eq!(count.load(Ordering::Relaxed), 1);
        e.abort_cleanup(&ctx);
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pooled_abort_cleanup_returns_blocks_to_the_pool() {
        let domain = Arc::new(Domain::with_pool(ReclaimMode::Epoch, PoolConfig::default()));
        let ctx = Domain::register(&domain);
        let count = Arc::new(AtomicUsize::new(0));
        let mut e = Effects::new();
        let a = e.alloc(&ctx, DropCounter(count.clone()));
        let addr = a as usize;
        e.abort_cleanup(&ctx);
        assert_eq!(count.load(Ordering::Relaxed), 1, "dropped in place");
        assert_eq!(ctx.pool_stats().unpublished_returns, 1);
        // The same block is handed straight back out.
        let b = ctx.alloc(0u64);
        assert_eq!(b as usize, addr);
        unsafe { ctx.dealloc_unpublished(b) };
    }
}
