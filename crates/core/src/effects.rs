//! Deferred side effects of transactional attempts.
//!
//! Code running inside a transaction must not retire nodes or release
//! SCX-record references — the attempt may abort, leaving the structure
//! untouched. Instead it records the intents in an [`Effects`] buffer; the
//! attempt wrapper applies them only after the transaction commits.
//! Conversely, nodes *allocated* inside a transaction are tracked so an
//! abort can free them (an aborted transaction published nothing, so they
//! are provably unreachable).

use threepath_llxscx::{ScxEngine, ScxThread};

unsafe fn drop_box<T>(p: *mut u8) {
    drop(unsafe { Box::from_raw(p as *mut T) });
}

/// Buffered post-commit (and post-abort) actions for one transactional
/// attempt.
#[derive(Default)]
pub struct Effects {
    retire: Vec<(*mut u8, unsafe fn(*mut u8))>,
    release_infos: Vec<u64>,
    allocs: Vec<(*mut u8, unsafe fn(*mut u8))>,
}

impl Effects {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defers retiring `ptr` (a `Box`-allocated node that the transaction
    /// unlinks) until the transaction commits.
    ///
    /// # Safety
    ///
    /// Same contract as [`threepath_reclaim::ReclaimCtx::retire`], holding
    /// at the time [`Effects::commit`] runs.
    pub unsafe fn defer_retire<T: Send>(&mut self, ptr: *mut T) {
        self.retire.push((ptr as *mut u8, drop_box::<T>));
    }

    /// Defers releasing the install reference of a replaced `info` value
    /// (see [`ScxEngine::release_replaced`]).
    pub fn defer_release_info(&mut self, info: u64) {
        self.release_infos.push(info);
    }

    /// Boxes `val` and tracks the allocation: if the attempt aborts, the
    /// node is freed (nothing was published); if it commits, the node has
    /// been linked into the structure and is kept.
    pub fn alloc<T: Send>(&mut self, val: T) -> *mut T {
        let p = Box::into_raw(Box::new(val));
        self.allocs.push((p as *mut u8, drop_box::<T>));
        p
    }

    /// Stops tracking an allocation made with [`Self::alloc`] and frees it
    /// now. For paths that decide *within* the attempt not to publish a
    /// node.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from [`Self::alloc`] on this buffer and must
    /// not have been published.
    pub unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T) {
        let raw = ptr as *mut u8;
        if let Some(i) = self.allocs.iter().position(|(p, _)| *p == raw) {
            let (p, dtor) = self.allocs.swap_remove(i);
            // SAFETY: tracked allocation, unpublished per contract.
            unsafe { dtor(p) };
        }
    }

    /// Whether nothing was deferred or tracked.
    pub fn is_empty(&self) -> bool {
        self.retire.is_empty() && self.release_infos.is_empty() && self.allocs.is_empty()
    }

    /// Applies the deferred actions after a successful commit. Tracked
    /// allocations are simply released from tracking (they are now owned by
    /// the structure).
    pub fn commit(self, eng: &ScxEngine, th: &ScxThread) {
        for (ptr, dtor) in &self.retire {
            // SAFETY: per defer_retire's contract; the transaction that
            // unlinked these nodes has committed.
            unsafe { th.reclaim.retire_raw(*ptr, *dtor) };
        }
        eng.release_replaced(th, &self.release_infos);
        // self.allocs dropped without freeing: nodes are published.
    }

    /// Cleans up after an abort: frees tracked allocations (the transaction
    /// had no effect, so they were never published) and discards deferred
    /// retirements/releases (the nodes are still linked).
    pub fn abort_cleanup(&mut self) {
        self.retire.clear();
        self.release_infos.clear();
        for (ptr, dtor) in self.allocs.drain(..) {
            // SAFETY: allocated by `alloc` and unpublished (attempt aborted).
            unsafe { dtor(ptr) };
        }
    }
}

impl std::fmt::Debug for Effects {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Effects")
            .field("retire", &self.retire.len())
            .field("release_infos", &self.release_infos.len())
            .field("allocs", &self.allocs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn abort_cleanup_frees_allocs_and_discards_retires() {
        let count = Arc::new(AtomicUsize::new(0));
        let mut e = Effects::new();
        let _a = e.alloc(DropCounter(count.clone()));
        let r = Box::into_raw(Box::new(7u64));
        unsafe { e.defer_retire(r) };
        e.defer_release_info(0);
        e.abort_cleanup();
        assert!(e.is_empty());
        assert_eq!(count.load(Ordering::Relaxed), 1, "alloc freed on abort");
        // The deferred retire must NOT have freed r.
        drop(unsafe { Box::from_raw(r) });
    }

    #[test]
    fn free_unpublished_releases_single_alloc() {
        let count = Arc::new(AtomicUsize::new(0));
        let mut e = Effects::new();
        let a = e.alloc(DropCounter(count.clone()));
        let _b = e.alloc(DropCounter(count.clone()));
        unsafe { e.free_unpublished(a) };
        assert_eq!(count.load(Ordering::Relaxed), 1);
        e.abort_cleanup();
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}
