//! The contention manager: one throughput-probing seam behind every
//! adaptive loop in the template.
//!
//! The repo grew three independent adaptive mechanisms — per-shard
//! strategy selection, per-tree attempt budgets, and the read-escalation
//! bound — each built on hand-tuned abort-rate thresholds (demote above
//! X, promote below Y) that encode guesses about the platform. This
//! module replaces all three decision rules with a single empirical one:
//!
//! > Probe each candidate *arm* for a window of operations, score what
//! > actually happened, and keep the arm that measured fastest.
//!
//! A [`Controller`] observes [`Window`]s — per-epoch aggregates of
//! completed operations, transactional attempts, and (optionally)
//! wall-clock nanoseconds — and answers one question: which arm should
//! the next window run under? What an arm *means* is the client's
//! business: the sharded map maps arms to strategies (TLE vs 3-path),
//! the budget loop maps them to fast/middle attempt pairs, the read path
//! maps them to escalation bounds.
//!
//! [`ProbingController`] is the implementation: a round-robin probe pass
//! over every arm, an argmax over the measured scores (with a small
//! hold-back margin so near-ties keep the incumbent), and a settle phase
//! exploiting the winner before the next pass re-checks the ranking.
//! There are no thresholds to tune — only *how often* to re-probe.
//!
//! Clients claim windows under their own single-claimant latch (see the
//! callers' `deciding` flags), so [`Controller::observe`] is called at
//! epoch granularity, never per-operation; the hot path only reads the
//! cached arm.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One epoch's worth of observations, measured under a single arm.
///
/// `ops` and `attempts` are the primary signal (the paper's currency:
/// completed operations per transactional attempt); `nanos` — when the
/// client measures wall-clock — upgrades the score to true throughput.
/// `conflicts`/`other` split the failed attempts by abort class and are
/// carried for diagnostics; the probing score does not consult them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Window {
    /// Operations completed during the window (on any path).
    pub ops: u64,
    /// Transactional attempts charged to the window, including any
    /// client-chosen penalty weighting (e.g. for escalations).
    pub attempts: u64,
    /// Attempts that failed with conflict aborts.
    pub conflicts: u64,
    /// Attempts that failed for any other reason.
    pub other: u64,
    /// Wall-clock duration of the window, or 0 if the client does not
    /// measure time (the score then falls back to ops/attempt).
    pub nanos: u64,
}

impl Window {
    /// The window's score in fixed-point (larger is faster): completed
    /// ops per wall-second when `nanos` was measured, completed ops per
    /// attempt otherwise. Empty windows score zero.
    pub fn score(&self) -> u64 {
        const SCALE: u128 = 1 << 20;
        if self.ops == 0 {
            return 0;
        }
        let denom = if self.nanos > 0 {
            self.nanos as u128
        } else {
            self.attempts.max(1) as u128
        };
        let s = (self.ops as u128 * SCALE) / denom;
        u64::try_from(s).unwrap_or(u64::MAX)
    }
}

/// What one contention-manager decision looks like from the outside.
///
/// Implementations must be cheap to query: [`Controller::arm`] sits on
/// epoch-crossing paths and is also read by tests and diagnostics, so it
/// should be a single atomic load. [`Controller::observe`] is only
/// called by the single window claimant, at epoch granularity.
pub trait Controller: Send + Sync + fmt::Debug {
    /// Number of arms this controller chooses between.
    fn arms(&self) -> usize;

    /// The arm the next window should run under.
    fn arm(&self) -> usize;

    /// Feeds one claimed window, measured under `arm`. Windows measured
    /// under an arm other than the current one are stale (the claimant
    /// raced a switch) and may be discarded.
    fn observe(&self, arm: usize, w: Window);

    /// How many times the chosen arm has changed.
    fn switches(&self) -> u64;

    /// The settled decision: the arm the controller would exploit were
    /// it not mid-probe. Defaults to [`arm`](Controller::arm);
    /// probing implementations report the incumbent so diagnostics and
    /// tests never read a transient excursion.
    fn incumbent(&self) -> usize {
        self.arm()
    }
}

/// Tuning for [`ProbingController`]: how long to probe and how long to
/// exploit. There are deliberately no rate thresholds here.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeConfig {
    /// Windows spent measuring each arm during a probe pass.
    pub probe_windows: u32,
    /// Windows spent exploiting the winner before the next probe pass.
    pub settle_windows: u32,
    /// Fractional score advantage a challenger needs over the incumbent
    /// before the controller switches (hysteresis against measurement
    /// noise; `0.05` = 5%). Must be finite and non-negative.
    pub min_gain: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            probe_windows: 1,
            settle_windows: 8,
            min_gain: 0.05,
        }
    }
}

impl ProbeConfig {
    /// Validates the tuning: at least one window per phase and a sane
    /// hold-back margin.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.probe_windows == 0 {
            return Err("probe_windows must be at least 1");
        }
        if self.settle_windows == 0 {
            return Err("settle_windows must be at least 1");
        }
        if !self.min_gain.is_finite() || self.min_gain < 0.0 {
            return Err("min_gain must be finite and non-negative");
        }
        Ok(())
    }
}

/// Probe phase bookkeeping, guarded by the state mutex.
#[derive(Debug)]
enum Phase {
    /// Measuring arm `arm` (index into the probe order), `seen` windows in.
    Probe { arm: usize, seen: u32 },
    /// Exploiting the pass winner for `left` more windows.
    Settle { left: u32 },
}

#[derive(Debug)]
struct ProbeState {
    phase: Phase,
    /// Accumulated per-arm totals for the current probe pass.
    sums: Vec<Window>,
    /// The incumbent at the start of the current pass (tie-breaks argmax).
    incumbent: usize,
}

/// The throughput-probing [`Controller`]: cycles through every arm,
/// scores each by what its windows actually measured, and settles on
/// the empirical winner.
///
/// The current arm is cached in an atomic so readers never touch the
/// mutex; only `observe` (single claimant, epoch granularity) locks.
pub struct ProbingController {
    cfg: ProbeConfig,
    n_arms: usize,
    current: AtomicUsize,
    switches: AtomicU64,
    passes: AtomicU64,
    state: Mutex<ProbeState>,
}

impl fmt::Debug for ProbingController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbingController")
            .field("arms", &self.n_arms)
            .field("arm", &self.arm())
            .field("switches", &self.switches())
            .field("passes", &self.passes())
            .finish()
    }
}

impl ProbingController {
    /// A controller over `arms` arms, starting (and anchored) on
    /// `initial`. Panics if `arms == 0`, `initial >= arms`, or the
    /// tuning fails [`ProbeConfig::validate`] — callers surface typed
    /// errors before constructing one.
    pub fn new(arms: usize, initial: usize, cfg: ProbeConfig) -> ProbingController {
        assert!(arms > 0, "a controller needs at least one arm");
        assert!(initial < arms, "initial arm out of range");
        if let Err(e) = cfg.validate() {
            panic!("invalid probe tuning: {e}");
        }
        ProbingController {
            cfg,
            n_arms: arms,
            current: AtomicUsize::new(initial),
            switches: AtomicU64::new(0),
            passes: AtomicU64::new(0),
            state: Mutex::new(ProbeState {
                phase: Phase::Probe { arm: 0, seen: 0 },
                sums: vec![Window::default(); arms],
                incumbent: initial,
            }),
        }
    }

    /// Completed probe passes (each pass measures every arm once).
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// The settled choice: the arm the controller exploits between probe
    /// excursions. Unlike [`Controller::arm`] this never reads as a
    /// mid-probe excursion, so tests and diagnostics that ask "what did
    /// probing decide?" should ask for the incumbent.
    pub fn incumbent(&self) -> usize {
        self.state.lock().unwrap().incumbent
    }

    /// The per-arm scores accumulated by the probe pass in flight
    /// (diagnostic; zeros between passes).
    pub fn scores(&self) -> Vec<u64> {
        let st = self.state.lock().unwrap();
        st.sums.iter().map(|w| w.score()).collect()
    }

    /// Restarts probing from scratch, re-anchored on `initial` (used when
    /// the client's world changes, e.g. a strategy swap re-anchors the
    /// budget ladder). Counts as a switch if the arm actually moves.
    pub fn reset(&self, initial: usize) {
        assert!(initial < self.n_arms, "initial arm out of range");
        let mut st = self.state.lock().unwrap();
        st.phase = Phase::Probe { arm: 0, seen: 0 };
        for s in st.sums.iter_mut() {
            *s = Window::default();
        }
        st.incumbent = initial;
        self.set_arm(initial);
    }

    /// Probe order: visit the incumbent last so the pass hands off to the
    /// settle phase without an extra switch when the incumbent wins.
    fn probe_arm(&self, incumbent: usize, slot: usize) -> usize {
        (incumbent + 1 + slot) % self.n_arms
    }

    fn set_arm(&self, arm: usize) {
        let prev = self.current.swap(arm, Ordering::AcqRel);
        if prev != arm {
            self.switches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Picks the pass winner: the best-scoring arm, unless the incumbent
    /// is within `min_gain` of it (near-ties keep the incumbent still).
    fn pick(&self, st: &ProbeState) -> usize {
        let mut best = st.incumbent;
        let mut best_score = st.sums[st.incumbent].score();
        for (i, w) in st.sums.iter().enumerate() {
            if i == st.incumbent {
                continue;
            }
            let s = w.score();
            if s > best_score {
                best = i;
                best_score = s;
            }
        }
        if best == st.incumbent {
            return best;
        }
        let inc = st.sums[st.incumbent].score();
        // Challenger must clear the incumbent by the configured margin.
        let hurdle = (inc as f64) * (1.0 + self.cfg.min_gain);
        if (best_score as f64) > hurdle {
            best
        } else {
            st.incumbent
        }
    }

    fn fold(sum: &mut Window, w: Window) {
        sum.ops = sum.ops.saturating_add(w.ops);
        sum.attempts = sum.attempts.saturating_add(w.attempts);
        sum.conflicts = sum.conflicts.saturating_add(w.conflicts);
        sum.other = sum.other.saturating_add(w.other);
        sum.nanos = sum.nanos.saturating_add(w.nanos);
    }
}

impl Controller for ProbingController {
    fn arms(&self) -> usize {
        self.n_arms
    }

    fn arm(&self) -> usize {
        self.current.load(Ordering::Acquire)
    }

    fn observe(&self, arm: usize, w: Window) {
        if arm != self.arm() {
            // Stale: the window straddled a switch the claimant lost a
            // race with; its counts mix arms, so it teaches nothing.
            return;
        }
        let mut st = self.state.lock().unwrap();
        match st.phase {
            Phase::Probe { arm: slot, seen } => {
                let probing = self.probe_arm(st.incumbent, slot);
                if probing != arm {
                    // First window after entering the probe phase was
                    // started under the previous arm; skip it.
                    self.set_arm(probing);
                    return;
                }
                Self::fold(&mut st.sums[probing], w);
                let seen = seen + 1;
                if seen < self.cfg.probe_windows {
                    st.phase = Phase::Probe { arm: slot, seen };
                } else if slot + 1 < self.n_arms {
                    st.phase = Phase::Probe {
                        arm: slot + 1,
                        seen: 0,
                    };
                    let next = self.probe_arm(st.incumbent, slot + 1);
                    self.set_arm(next);
                } else {
                    let winner = self.pick(&st);
                    st.incumbent = winner;
                    st.phase = Phase::Settle {
                        left: self.cfg.settle_windows,
                    };
                    self.passes.fetch_add(1, Ordering::Relaxed);
                    self.set_arm(winner);
                }
            }
            Phase::Settle { left } => {
                let left = left.saturating_sub(1);
                if left == 0 {
                    st.phase = Phase::Probe { arm: 0, seen: 0 };
                    for s in st.sums.iter_mut() {
                        *s = Window::default();
                    }
                    let first = self.probe_arm(st.incumbent, 0);
                    self.set_arm(first);
                } else {
                    st.phase = Phase::Settle { left };
                }
            }
        }
    }

    fn switches(&self) -> u64 {
        self.switches.load(Ordering::Relaxed)
    }

    fn incumbent(&self) -> usize {
        ProbingController::incumbent(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn win(ops: u64, attempts: u64) -> Window {
        Window {
            ops,
            attempts,
            conflicts: 0,
            other: 0,
            nanos: 0,
        }
    }

    fn timed(ops: u64, nanos: u64) -> Window {
        Window {
            ops,
            attempts: ops,
            conflicts: 0,
            other: 0,
            nanos,
        }
    }

    /// Drives `c` through windows whose score depends only on the arm,
    /// via `per_arm`, for `n` observations.
    fn drive(c: &ProbingController, n: usize, per_arm: impl Fn(usize) -> Window) {
        for _ in 0..n {
            let a = c.arm();
            c.observe(a, per_arm(a));
        }
    }

    #[test]
    fn score_prefers_nanos_over_attempts() {
        // Same ops/attempt, different wall-clock: nanos decides.
        assert!(timed(100, 1_000).score() > timed(100, 2_000).score());
        // No clock: ops per attempt decides.
        assert!(win(100, 120).score() > win(100, 480).score());
        assert_eq!(win(0, 1_000).score(), 0);
    }

    #[test]
    fn probe_pass_visits_every_arm() {
        let c = ProbingController::new(3, 0, ProbeConfig::default());
        let mut seen = [false; 3];
        // One pass = 3 probe windows plus the alignment window the
        // controller drops at construction.
        for _ in 0..4 {
            let a = c.arm();
            seen[a] = true;
            c.observe(a, win(100, 100));
        }
        assert_eq!(seen, [true; 3], "pass skipped an arm: {seen:?}");
        assert_eq!(c.passes(), 1);
    }

    #[test]
    fn converges_on_the_fastest_arm_by_attempts() {
        let c = ProbingController::new(3, 0, ProbeConfig::default());
        // Arm 2 completes the same ops in a quarter of the attempts.
        drive(&c, 64, |a| {
            if a == 2 {
                win(1000, 1100)
            } else {
                win(1000, 4400)
            }
        });
        assert_eq!(c.arm(), 2);
        assert!(c.passes() >= 1);
    }

    #[test]
    fn converges_on_the_fastest_arm_by_wall_clock() {
        let c = ProbingController::new(2, 0, ProbeConfig::default());
        // Arm 1 takes half the time per window.
        drive(&c, 64, |a| {
            if a == 1 {
                timed(1000, 500_000)
            } else {
                timed(1000, 1_000_000)
            }
        });
        assert_eq!(c.arm(), 1);
    }

    #[test]
    fn near_ties_keep_the_incumbent() {
        let c = ProbingController::new(2, 0, ProbeConfig::default());
        // Arm 1 is 2% better — inside the 5% hold-back margin.
        drive(&c, 64, |a| {
            if a == 1 {
                win(1020, 1000)
            } else {
                win(1000, 1000)
            }
        });
        assert_eq!(c.arm(), 0, "a 2% edge should not dethrone the incumbent");
        // Re-probing continues (the pass counter keeps advancing) even
        // though the decision is stable.
        assert!(c.passes() >= 4);
    }

    #[test]
    fn settles_between_passes() {
        let cfg = ProbeConfig {
            probe_windows: 1,
            settle_windows: 6,
            min_gain: 0.05,
        };
        let c = ProbingController::new(2, 0, cfg);
        // One full pass (2 probe windows + the construction alignment
        // window) then count settle windows on the winner before the arm
        // moves again.
        drive(&c, 3, |_| win(100, 100));
        assert_eq!(c.passes(), 1);
        let winner = c.arm();
        let mut stayed = 0;
        for _ in 0..cfg.settle_windows {
            assert_eq!(c.arm(), winner);
            c.observe(winner, win(100, 100));
            stayed += 1;
        }
        assert_eq!(stayed, cfg.settle_windows);
        // Next observation belongs to a fresh probe pass.
        assert!(matches!(
            c.state.lock().unwrap().phase,
            Phase::Probe { .. }
        ));
    }

    #[test]
    fn recovers_when_the_fast_arm_changes() {
        let cfg = ProbeConfig {
            probe_windows: 1,
            settle_windows: 2,
            min_gain: 0.05,
        };
        let c = ProbingController::new(2, 0, cfg);
        drive(&c, 32, |a| if a == 0 { win(400, 400) } else { win(100, 400) });
        assert_eq!(c.arm(), 0);
        // The world flips: arm 1 becomes fastest.
        drive(&c, 32, |a| if a == 1 { win(400, 400) } else { win(100, 400) });
        assert_eq!(c.arm(), 1);
        assert!(c.switches() >= 2);
    }

    #[test]
    fn stale_windows_are_discarded() {
        let c = ProbingController::new(2, 0, ProbeConfig::default());
        let before = format!("{:?}", c);
        // A window claimed under arm 1 while the controller is on arm 0
        // must not advance the state machine.
        c.observe(1, win(1_000_000, 1));
        assert_eq!(format!("{:?}", c), before);
    }

    #[test]
    fn reset_reanchors_and_restarts() {
        let c = ProbingController::new(3, 0, ProbeConfig::default());
        drive(&c, 16, |a| win(100 * (a as u64 + 1), 100));
        c.reset(1);
        assert_eq!(c.arm(), 1);
        assert!(c.scores().iter().all(|&s| s == 0));
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn zero_arms_panics() {
        let _ = ProbingController::new(0, 0, ProbeConfig::default());
    }

    #[test]
    #[should_panic(expected = "probe_windows")]
    fn zero_probe_windows_panics() {
        let cfg = ProbeConfig {
            probe_windows: 0,
            ..ProbeConfig::default()
        };
        let _ = ProbingController::new(2, 0, cfg);
    }

    #[test]
    fn concurrent_observers_never_wedge_the_state_machine() {
        // The claimant latch normally serializes observe(); the
        // controller itself must still tolerate raw concurrent calls
        // (stale ones are dropped, live ones serialize on the mutex).
        let c = Arc::new(ProbingController::new(2, 0, ProbeConfig::default()));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        let a = c.arm();
                        c.observe(a, win(50, 60));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(c.arm() < 2);
        assert!(c.passes() >= 1);
    }
}
