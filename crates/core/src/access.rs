//! Memory-access modes.
//!
//! Sequential data-structure code (the fast path and TLE's under-lock
//! fallback) is written once, generic over [`Mem`], and instantiated with
//! [`TxMem`] (transactional) or [`DirectMem`] (plain coordinated access).
//! This mirrors how the paper derives each path from the same operation
//! logic.

use threepath_htm::{Abort, HtmRuntime, TxCell, Txn};
use threepath_reclaim::ReclaimCtx;

use crate::effects::Effects;

/// A way of reading and writing [`TxCell`]s and retiring unlinked nodes.
///
/// Direct access never fails; transactional access can abort — generic code
/// uses `?` uniformly and the direct instantiation simply never takes the
/// error branch.
pub trait Mem {
    /// Reads a cell.
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort>;
    /// Writes a cell.
    fn write(&mut self, cell: &TxCell, v: u64) -> Result<(), Abort>;

    /// Schedules an unlinked node for reclamation: immediately in direct
    /// mode, post-commit in transactional mode. Call only on success paths
    /// (after the unlinking write is durable or inside the transaction that
    /// performs it).
    ///
    /// # Safety
    ///
    /// Same contract as [`ReclaimCtx::retire`].
    unsafe fn retire<T: Send>(&mut self, ptr: *mut T);

    /// Allocates a node on the heap. In transactional mode the allocation
    /// is tracked and freed automatically if the attempt aborts.
    fn alloc<T: Send>(&mut self, val: T) -> *mut T;

    /// Frees a node allocated with [`Self::alloc`] that the operation
    /// decided not to publish.
    ///
    /// # Safety
    ///
    /// `ptr` must come from this mode's `alloc` during the current attempt
    /// and must not have been written into any reachable cell.
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T);

    /// Compare-and-swap: writes `new` iff the cell holds `old`. Returns
    /// whether the swap applied; `Ok(false)` leaves the cell untouched.
    ///
    /// The default (read, compare, write) is atomic in transactional mode
    /// because the enclosing transaction is; [`DirectMem`] overrides it
    /// with a hardware-style CAS so lock-free callers (the snapshot
    /// version-chain push) don't lose updates between the read and the
    /// write.
    fn cas(&mut self, cell: &TxCell, old: u64, new: u64) -> Result<bool, Abort> {
        if self.read(cell)? != old {
            return Ok(false);
        }
        self.write(cell, new)?;
        Ok(true)
    }

    /// Reads a cell as a raw pointer.
    fn read_ptr<T>(&mut self, cell: &TxCell) -> Result<*mut T, Abort> {
        self.read(cell).map(|v| v as *mut T)
    }

    /// Writes a raw pointer into a cell.
    fn write_ptr<T>(&mut self, cell: &TxCell, p: *mut T) -> Result<(), Abort> {
        self.write(cell, p as u64)
    }
}

/// Transactional access: reads and writes go through the enclosing
/// transaction; retirements are buffered until commit. Allocations come
/// from the thread's node pool (when the domain pools) and return there
/// automatically if the attempt aborts.
pub struct TxMem<'a, 'b> {
    tx: &'a mut Txn<'b>,
    effects: &'a mut Effects,
    reclaim: &'a ReclaimCtx,
}

impl<'a, 'b> TxMem<'a, 'b> {
    /// Wraps a transaction, an effects buffer and the calling thread's
    /// reclamation context (the allocation seam).
    pub fn new(tx: &'a mut Txn<'b>, effects: &'a mut Effects, reclaim: &'a ReclaimCtx) -> Self {
        TxMem {
            tx,
            effects,
            reclaim,
        }
    }

    /// The wrapped transaction.
    pub fn txn(&mut self) -> &mut Txn<'b> {
        self.tx
    }
}

impl Mem for TxMem<'_, '_> {
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        self.tx.read(cell)
    }
    fn write(&mut self, cell: &TxCell, v: u64) -> Result<(), Abort> {
        self.tx.write(cell, v)
    }
    unsafe fn retire<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract, applied post-commit.
        unsafe { self.effects.defer_retire(ptr) };
    }
    fn alloc<T: Send>(&mut self, val: T) -> *mut T {
        self.effects.alloc(self.reclaim, val)
    }
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract.
        unsafe { self.effects.free_unpublished(self.reclaim, ptr) };
    }
}

/// Direct access: seqlock-coordinated loads and stores, outside any
/// transaction. Used by the TLE fallback (which holds the global lock) and
/// by wait-free searches on the software path.
pub struct DirectMem<'a> {
    rt: &'a HtmRuntime,
    reclaim: &'a ReclaimCtx,
}

impl<'a> DirectMem<'a> {
    /// Wraps a runtime and the calling thread's reclamation context (which
    /// must be pinned for the duration of use).
    pub fn new(rt: &'a HtmRuntime, reclaim: &'a ReclaimCtx) -> Self {
        debug_assert!(reclaim.is_pinned());
        DirectMem { rt, reclaim }
    }
}

impl Mem for DirectMem<'_> {
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        Ok(cell.load_direct(self.rt))
    }
    fn write(&mut self, cell: &TxCell, v: u64) -> Result<(), Abort> {
        cell.store_direct(self.rt, v);
        Ok(())
    }
    fn cas(&mut self, cell: &TxCell, old: u64, new: u64) -> Result<bool, Abort> {
        Ok(cell.cas_direct(self.rt, old, new).is_ok())
    }
    unsafe fn retire<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: forwarded contract; pooled nodes recycle on expiry.
        unsafe { self.reclaim.retire_node(ptr) };
    }
    fn alloc<T: Send>(&mut self, val: T) -> *mut T {
        self.reclaim.alloc(val)
    }
    unsafe fn free_unpublished<T: Send>(&mut self, ptr: *mut T) {
        // SAFETY: unpublished per contract; direct mode applies writes
        // immediately, so the caller is the sole owner — the block goes
        // straight back to the pool.
        unsafe { self.reclaim.dealloc_unpublished(ptr) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use threepath_htm::HtmConfig;
    use threepath_reclaim::{Domain, ReclaimMode};

    fn double<M: Mem>(m: &mut M, c: &TxCell) -> Result<u64, Abort> {
        let v = m.read(c)?;
        m.write(c, v * 2)?;
        m.read(c)
    }

    #[test]
    fn generic_code_runs_in_both_modes() {
        let rt = HtmRuntime::new(HtmConfig::default());
        let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
        let ctx = Domain::register(&domain);
        let c = TxCell::new(21);

        ctx.enter();
        let mut direct = DirectMem::new(&rt, &ctx);
        assert_eq!(double(&mut direct, &c).unwrap(), 42);
        ctx.exit();

        let mut th = rt.register_thread();
        let mut eff = Effects::new();
        let r = rt.attempt(&mut th, |tx| {
            let mut m = TxMem::new(tx, &mut eff, &ctx);
            double(&mut m, &c)
        });
        assert_eq!(r.unwrap(), 84);
        assert_eq!(c.load_direct(&rt), 84);
    }

    #[test]
    fn pointer_helpers() {
        let rt = HtmRuntime::new(HtmConfig::default());
        let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
        let ctx = Domain::register(&domain);
        let c = TxCell::new(0);
        let mut x = 5u32;
        ctx.enter();
        let mut m = DirectMem::new(&rt, &ctx);
        m.write_ptr(&c, &mut x as *mut u32).unwrap();
        assert_eq!(m.read_ptr::<u32>(&c).unwrap(), &mut x as *mut u32);
        ctx.exit();
    }

    #[test]
    fn tx_retire_applies_only_on_commit() {
        let rt = HtmRuntime::new(HtmConfig::default());
        let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
        let ctx = Domain::register(&domain);
        let mut th = rt.register_thread();
        let mut eff = Effects::new();
        let p = Box::into_raw(Box::new(1u64));
        let _: Result<(), _> = rt.attempt(&mut th, |tx| {
            let mut m = TxMem::new(tx, &mut eff, &ctx);
            // SAFETY: test owns p.
            unsafe { m.retire(p) };
            Err(tx.abort(0))
        });
        // Aborted: the retirement must be discarded, not applied.
        eff.abort_cleanup(&ctx);
        assert_eq!(domain.retired_total(), 0);
        drop(unsafe { Box::from_raw(p) });
        drop(ctx);
    }
}
