//! The uninstrumented read path.
//!
//! The template paper's headline property is that *searches require no
//! synchronization at all*: node keys are immutable and child pointers
//! change only through atomic SCX commits, so an epoch-pinned traversal is
//! linearizable with no HTM, no locks and no validation. [`run_op`] cannot
//! express that — every operation it drives pays transaction begin/abort
//! handling, lock/`F` subscription and attempt-budget tallying, and under
//! an abort storm read-only lookups needlessly fall back to the serialized
//! paths.
//!
//! This module is the dedicated entry for reads:
//!
//! * [`ExecCtx::run_read`] — a wait-free read: pin the epoch, run the
//!   direct traversal, record the completion on the
//!   [`PathKind::Read`] stats lane. No subscription, no budget tally, no
//!   fallback escalation. Correct whenever the traversal is linearizable
//!   on its own (the BST: immutable leaves, atomic pointer swings).
//! * [`ExecCtx::run_read_validated`] — an *optimistic* read for structures
//!   whose nodes mutate in place (the (a,b)-tree's leaves): each attempt
//!   performs a seqlock-validated traversal and reports `None` when the
//!   validation lost a race; after [`bounded`](DEFAULT_READ_ATTEMPTS)
//!   failures the read returns `None` to the caller, which escalates to
//!   the transactional machinery via [`run_op`]. Retries and escalations
//!   are tallied in [`PathStats`].
//! * [`ExecCtx::run_scan`] / [`ExecCtx::run_scan_snap`] — the multi-leaf
//!   extension, a *ladder* of tiers: each full attempt walks every leaf
//!   covering `[lo, hi)` while accumulating a flat *validation set* (leaf
//!   version words and followed edges) and re-validates the whole set at
//!   the end; a lost race retries the full scan, and once the full-scan
//!   budget is exhausted a single *partial rescan* attempt re-reads only
//!   the invalidated subranges and re-validates the *combined* set (so
//!   the result is still a single-instant snapshot). When even the
//!   partial rescan loses, `run_scan_snap` tries one **snapshot** attempt
//!   — the backend publishes a [`SnapshotCtl`](crate::SnapshotCtl) epoch
//!   and reads a frozen version wait-free (tallied as
//!   [`PathStats::scan_snapshots`]) — and only if the snapshot tier is
//!   disabled or cannot be published does the scan give up and escalate
//!   to [`run_op`]. Scan retries/escalations/snapshot rescues and
//!   validation-set sizes are tallied on [`PathStats`]' scan lane.
//!
//! [`run_op`]: ExecCtx::run_op

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use threepath_htm::CachePadded;
use threepath_llxscx::ScxThread;

use crate::controller::{Controller, ProbeConfig, ProbingController, Window};
use crate::driver::ExecCtx;
use crate::stats::{PathKind, PathStats};

/// Default bound on optimistic validation retries before a validated read
/// gives up and escalates to the transactional path. Validation fails only
/// while an in-place mutation of the traversed node is in flight, so in
/// the steady state a read never comes close to the bound; it exists so a
/// reader stalled behind a pathological mutation storm stays lock-free
/// rather than spinning forever.
pub const DEFAULT_READ_ATTEMPTS: u32 = 8;

/// Attempt-equivalent cost charged for a read that escalated to the
/// transactional machinery, when scoring read-bound arms: an escalation
/// re-runs the whole operation through `run_op`, typically serializing
/// behind the lock or the fallback — far costlier than one more
/// optimistic traversal.
const ESCALATION_WEIGHT: u64 = 16;

/// Tuning for the probing read-escalation bound
/// ([`ExecCtx::with_read_probe`](crate::ExecCtx::with_read_probe)): how
/// many validation attempts an optimistic read or scan gets before
/// escalating, chosen empirically from a ladder of candidate bounds.
///
/// The calm read path stays zero-synchronization: only *contended* reads
/// (at least one failed validation, or an escalation) touch the shared
/// window, so an uncontended workload never pays for the controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadBoundConfig {
    /// Contended reads per decision window. Must be at least 2 (a
    /// one-read window carries no comparative signal and degenerates
    /// the claim guard).
    pub epoch_ops: u64,
    /// Candidate bounds, each one arm of the probing controller. Must be
    /// non-empty with every entry positive.
    pub ladder: Vec<u32>,
    /// Probe/settle cadence for the controller.
    pub probe: ProbeConfig,
}

impl Default for ReadBoundConfig {
    fn default() -> Self {
        ReadBoundConfig {
            epoch_ops: 256,
            ladder: vec![2, 4, DEFAULT_READ_ATTEMPTS, 16],
            probe: ProbeConfig::default(),
        }
    }
}

impl ReadBoundConfig {
    /// Checks the tuning for degeneracy (the conditions
    /// [`ExecCtx::with_read_probe`](crate::ExecCtx::with_read_probe)
    /// panics on; config layers surface them as typed errors).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.epoch_ops < 2 {
            return Err("read-probe epoch_ops must be at least 2");
        }
        if self.epoch_ops > (1 << 30) {
            return Err("read-probe epoch_ops must be at most 2^30");
        }
        if self.ladder.is_empty() {
            return Err("read-probe ladder must name at least one bound");
        }
        if self.ladder.contains(&0) {
            return Err("read-probe bounds must be positive");
        }
        self.probe.validate()
    }

    /// The ladder arm probing starts from: the entry closest to the
    /// fixed default bound, so an unprobed context and a fresh probing
    /// one begin with the same behavior.
    fn initial_arm(&self) -> usize {
        self.ladder
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| b.abs_diff(DEFAULT_READ_ATTEMPTS))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// The read-escalation bound as a contention-manager client: a probing
/// controller over [`ReadBoundConfig::ladder`], fed only by contended
/// reads, its chosen bound cached in an atomic the read path loads once
/// per operation.
#[derive(Debug)]
pub(crate) struct ReadBound {
    cfg: ReadBoundConfig,
    ctl: ProbingController,
    /// The bound in effect — `ladder[ctl.arm()]`, cached.
    bound: CachePadded<AtomicU32>,
    /// `contended reads << 32 | failed validations`, pushed only by
    /// contended reads. Both halves stay far below 2³²: the read count
    /// claims the window at `epoch_ops ≤ 2³⁰`, and each read
    /// contributes at most `max(ladder) + 1` failures.
    win: CachePadded<AtomicU64>,
    /// Escalations in the window.
    win_esc: CachePadded<AtomicU64>,
    /// Single-claimant latch: the claimant swaps the windows, so racing
    /// claimants discard nothing.
    deciding: AtomicBool,
    epochs: AtomicU64,
}

impl ReadBound {
    /// # Panics
    ///
    /// Panics on tuning [`ReadBoundConfig::validate`] rejects.
    pub(crate) fn new(cfg: ReadBoundConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid read-probe tuning: {e}");
        }
        let initial = cfg.initial_arm();
        let ctl = ProbingController::new(cfg.ladder.len(), initial, cfg.probe);
        ReadBound {
            bound: CachePadded::new(AtomicU32::new(cfg.ladder[initial])),
            ctl,
            win: CachePadded::new(AtomicU64::new(0)),
            win_esc: CachePadded::new(AtomicU64::new(0)),
            deciding: AtomicBool::new(false),
            epochs: AtomicU64::new(0),
            cfg,
        }
    }

    /// The escalation bound currently in effect.
    pub(crate) fn bound(&self) -> u32 {
        self.bound.load(Ordering::Acquire)
    }

    /// Decision windows completed.
    pub(crate) fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Feeds one *contended* read: `failed` validation failures (≥ 1, or
    /// an escalation) and whether the read escalated to `run_op`.
    pub(crate) fn note(&self, failed: u64, escalated: bool) {
        if escalated {
            self.win_esc.fetch_add(1, Ordering::Relaxed);
        }
        let add = (1u64 << 32) | failed.min(u64::from(u32::MAX));
        let reads = (self.win.fetch_add(add, Ordering::Relaxed) + add) >> 32;
        if reads < self.cfg.epoch_ops {
            return;
        }
        if self
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let w = self.win.swap(0, Ordering::Relaxed);
        let esc = self.win_esc.swap(0, Ordering::Relaxed);
        let (reads, failures) = (w >> 32, w & u64::from(u32::MAX));
        // A racing claimant right behind the swap sees a near-empty
        // window: no signal, no decision.
        if reads < self.cfg.epoch_ops / 2 {
            self.deciding.store(false, Ordering::Release);
            return;
        }
        let completions = reads.saturating_sub(esc);
        let window = Window {
            ops: completions,
            // Each completed read costs its failures plus the final
            // success; escalations are charged the run_op penalty.
            attempts: completions + failures + esc * ESCALATION_WEIGHT,
            conflicts: esc,
            other: failures,
            nanos: 0,
        };
        let arm = self.ctl.arm();
        self.ctl.observe(arm, window);
        self.bound
            .store(self.cfg.ladder[self.ctl.arm()], Ordering::Release);
        self.epochs.fetch_add(1, Ordering::Relaxed);
        self.deciding.store(false, Ordering::Release);
    }
}

/// Per-scan bookkeeping an optimistic scan attempt reports back through
/// [`ExecCtx::run_scan`]: how much validation work the attempts did, folded
/// into [`PathStats::scan_leaves_validated`] when the scan finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanTally {
    /// Leaves (or nodes) whose validation word was captured and re-checked.
    pub leaves: u64,
}

/// Merges a set of half-open `[lo, hi)` subranges into a minimal sorted
/// list of disjoint subranges (empty inputs are dropped, overlapping and
/// adjacent inputs coalesce). The partial-rescan tier of an optimistic
/// scan uses this to turn the invalidated validation-set entries into the
/// holes it re-reads.
pub fn merge_subranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.retain(|&(lo, hi)| lo < hi);
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

impl ExecCtx {
    /// Runs a wait-free read-only operation: `body` executes exactly once
    /// under an epoch pin with plain direct memory access — no
    /// transaction, no lock or `F` subscription, no attempt budget — and
    /// its completion lands on the [`PathKind::Read`] stats lane.
    ///
    /// The caller asserts that `body`'s traversal is linearizable without
    /// validation (immutable node content; pointer changes are single
    /// atomic words). For structures that mutate nodes in place, use
    /// [`Self::run_read_validated`].
    pub fn run_read<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        body: impl FnOnce(&mut ScxThread) -> T,
    ) -> T {
        let v = th.pinned(body);
        stats.record_completed(PathKind::Read);
        v
    }

    /// Runs an optimistic read: `attempt` executes under an epoch pin and
    /// returns `None` when its seqlock validation failed (an in-place
    /// mutation raced the traversal), in which case it is retried up to
    /// `max_attempts` times in total.
    ///
    /// Returns `Some` with the read's result on success (recorded on the
    /// [`PathKind::Read`] lane, failed attempts tallied as
    /// [read retries](PathStats::read_retries)), or `None` once every
    /// attempt failed validation — recorded as a
    /// [read escalation](PathStats::read_escalations); the caller then
    /// routes the operation through [`Self::run_op`], whose paths do not
    /// rely on optimistic validation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `max_attempts` is zero.
    pub fn run_read_validated<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        max_attempts: u32,
        mut attempt: impl FnMut(&mut ScxThread) -> Option<T>,
    ) -> Option<T> {
        debug_assert!(max_attempts > 0, "at least one optimistic attempt");
        let (out, failed) = th.pinned(|th| {
            for i in 0..max_attempts {
                if let Some(v) = attempt(th) {
                    return (Some(v), u64::from(i));
                }
            }
            (None, u64::from(max_attempts))
        });
        stats.add_read_retries(failed);
        // Only contended reads feed the probing bound; the calm path
        // stays free of shared writes.
        if failed > 0 {
            if let Some(rb) = self.read_bound() {
                rb.note(failed, out.is_none());
            }
        }
        match out {
            Some(v) => {
                stats.record_completed(PathKind::Read);
                Some(v)
            }
            None => {
                stats.record_read_escalation();
                None
            }
        }
    }

    /// Runs an optimistic multi-leaf range scan: up to `max_attempts` full
    /// `attempt`s execute under one epoch pin, each returning `None` when
    /// its validation-set re-check lost a race; once the full-scan budget
    /// is exhausted, one `partial` attempt runs — the backend's
    /// partial-rescan tier, which re-reads only the invalidated subranges
    /// of the last full attempt and re-validates the *combined* set (so
    /// the result is still a single-instant snapshot).
    ///
    /// Returns `Some` on success (recorded on the [`PathKind::Read`] lane;
    /// failed attempts tallied as [scan retries](PathStats::scan_retries))
    /// or `None` once even the partial rescan failed — recorded as a
    /// [scan escalation](PathStats::scan_escalations); the caller then
    /// routes the scan through the transactional machinery
    /// ([`Self::run_op_escalated`]). Validation-set sizes accumulated in
    /// the attempts' [`ScanTally`] land on
    /// [`PathStats::scan_leaves_validated`].
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `max_attempts` is zero.
    pub fn run_scan<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        max_attempts: u32,
        attempt: impl FnMut(&mut ScxThread, &mut ScanTally) -> Option<T>,
        partial: impl FnMut(&mut ScxThread, &mut ScanTally) -> Option<T>,
    ) -> Option<T> {
        self.run_scan_snap(th, stats, max_attempts, attempt, partial, |_| None)
    }

    /// [`Self::run_scan`] with a final **snapshot tier**: when the whole
    /// validation ladder (full attempts, then the partial rescan) is
    /// exhausted, `snapshot` runs once under the same epoch pin. The
    /// backend publishes a snapshot epoch over the scanned range, walks
    /// the live structure with *no* validation, and reconstructs the
    /// cut-instant state from updaters' pre-image deposits (see
    /// [`SnapshotCtl`](crate::SnapshotCtl)) — wait-free with respect to
    /// concurrent updates, so sustained churn that defeats every
    /// validating tier no longer forces the scan into a transaction.
    ///
    /// A snapshot rescue is recorded as [`PathStats::scan_snapshots`] and
    /// completes on the [`PathKind::Read`] lane; for the probing read
    /// bound it counts as a non-escalated contended read. `snapshot`
    /// returning `None` (tier disabled, or the epoch could not be
    /// published/stabilized) records a scan escalation as before.
    pub fn run_scan_snap<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        max_attempts: u32,
        mut attempt: impl FnMut(&mut ScxThread, &mut ScanTally) -> Option<T>,
        mut partial: impl FnMut(&mut ScxThread, &mut ScanTally) -> Option<T>,
        mut snapshot: impl FnMut(&mut ScxThread) -> Option<T>,
    ) -> Option<T> {
        debug_assert!(max_attempts > 0, "at least one optimistic attempt");
        let mut tally = ScanTally::default();
        let (out, failed, snapped) = th.pinned(|th| {
            for i in 0..max_attempts {
                if let Some(v) = attempt(th, &mut tally) {
                    return (Some(v), u64::from(i), false);
                }
            }
            if let Some(v) = partial(th, &mut tally) {
                return (Some(v), u64::from(max_attempts), false);
            }
            let failed = u64::from(max_attempts) + 1;
            match snapshot(th) {
                Some(v) => (Some(v), failed, true),
                None => (None, failed, false),
            }
        });
        stats.add_scan_retries(failed);
        stats.add_scan_leaves_validated(tally.leaves);
        if failed > 0 {
            if let Some(rb) = self.read_bound() {
                rb.note(failed, out.is_none());
            }
        }
        match out {
            Some(v) => {
                if snapped {
                    stats.record_scan_snapshot();
                }
                stats.record_completed(PathKind::Read);
                Some(v)
            }
            None => {
                stats.record_scan_escalation();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use std::sync::Arc;
    use threepath_htm::{HtmConfig, HtmRuntime};
    use threepath_llxscx::ScxEngine;
    use threepath_reclaim::{Domain, ReclaimMode};

    fn setup() -> (ExecCtx, ScxEngine) {
        let rt = Arc::new(HtmRuntime::new(HtmConfig::default()));
        let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
        let eng = ScxEngine::new(rt.clone(), domain);
        (ExecCtx::new(rt, Strategy::ThreePath), eng)
    }

    #[test]
    fn run_read_pins_and_records_only_the_read_lane() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let v = exec.run_read(&mut th, &mut stats, |th| {
            assert!(th.reclaim.is_pinned(), "read body runs under a pin");
            42
        });
        assert_eq!(v, 42);
        assert!(!th.reclaim.is_pinned());
        assert_eq!(stats.completed(PathKind::Read), 1);
        for p in [PathKind::Fast, PathKind::Middle, PathKind::Fallback] {
            assert_eq!(stats.completed(p), 0);
            assert_eq!(stats.commits(p), 0);
            assert_eq!(stats.aborts(p).total(), 0);
        }
        assert_eq!(stats.read_retries(), 0);
        assert_eq!(stats.read_escalations(), 0);
    }

    #[test]
    fn validated_read_counts_retries_on_late_success() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let mut calls = 0;
        let r = exec.run_read_validated(&mut th, &mut stats, 8, |_th| {
            calls += 1;
            (calls == 3).then_some(7)
        });
        assert_eq!(r, Some(7));
        assert_eq!(calls, 3);
        assert_eq!(stats.completed(PathKind::Read), 1);
        assert_eq!(stats.read_retries(), 2, "two failed validations");
        assert_eq!(stats.read_escalations(), 0);
    }

    #[test]
    fn validated_read_escalates_after_the_bound() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let mut calls = 0u32;
        let r: Option<u64> = exec.run_read_validated(&mut th, &mut stats, 4, |_th| {
            calls += 1;
            None
        });
        assert_eq!(r, None);
        assert_eq!(calls, 4, "exactly max_attempts attempts");
        assert_eq!(stats.completed(PathKind::Read), 0, "no read completion");
        assert_eq!(stats.read_retries(), 4);
        assert_eq!(stats.read_escalations(), 1);
    }

    #[test]
    fn scan_success_records_read_lane_and_leaves() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let r = exec.run_scan(
            &mut th,
            &mut stats,
            8,
            |th, tally| {
                assert!(th.reclaim.is_pinned(), "scan attempts run pinned");
                tally.leaves += 5;
                Some(vec![(1u64, 2u64)])
            },
            |_th, _tally| unreachable!("first attempt succeeded"),
        );
        assert_eq!(r, Some(vec![(1, 2)]));
        assert!(!th.reclaim.is_pinned());
        assert_eq!(stats.completed(PathKind::Read), 1);
        assert_eq!(stats.scan_retries(), 0);
        assert_eq!(stats.scan_escalations(), 0);
        assert_eq!(stats.scan_leaves_validated(), 5);
    }

    #[test]
    fn scan_retries_then_partial_rescue_counts_full_failures() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let mut full_calls = 0u32;
        let r = exec.run_scan(
            &mut th,
            &mut stats,
            3,
            |_th, tally| {
                full_calls += 1;
                tally.leaves += 2;
                None
            },
            |_th, tally| {
                tally.leaves += 1;
                Some(99u64)
            },
        );
        assert_eq!(r, Some(99));
        assert_eq!(full_calls, 3, "full budget exhausted before partial");
        assert_eq!(stats.completed(PathKind::Read), 1);
        assert_eq!(stats.scan_retries(), 3, "every full attempt failed");
        assert_eq!(stats.scan_escalations(), 0, "partial rescan rescued it");
        assert_eq!(stats.scan_leaves_validated(), 7);
    }

    #[test]
    fn scan_escalates_when_even_the_partial_rescan_fails() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let mut partial_calls = 0u32;
        let r: Option<u64> = exec.run_scan(
            &mut th,
            &mut stats,
            2,
            |_th, _tally| None,
            |_th, _tally| {
                partial_calls += 1;
                None
            },
        );
        assert_eq!(r, None);
        assert_eq!(partial_calls, 1, "exactly one partial-rescan attempt");
        assert_eq!(stats.completed(PathKind::Read), 0);
        assert_eq!(stats.scan_retries(), 3, "two full + one partial failure");
        assert_eq!(stats.scan_escalations(), 1);
    }

    fn probe_cfg(epoch_ops: u64, ladder: Vec<u32>) -> ReadBoundConfig {
        ReadBoundConfig {
            epoch_ops,
            ladder,
            probe: ProbeConfig::default(),
        }
    }

    #[test]
    fn read_bound_starts_near_the_default() {
        let rb = ReadBound::new(ReadBoundConfig::default());
        assert_eq!(rb.bound(), DEFAULT_READ_ATTEMPTS);
        let rb = ReadBound::new(probe_cfg(64, vec![2, 6, 16]));
        assert_eq!(rb.bound(), 6, "closest ladder entry to the default");
    }

    #[test]
    fn read_bound_prefers_completing_over_escalating() {
        // A validation storm a deep bound can ride out: with bound 2
        // every read burns both attempts and escalates; with bound 16 it
        // completes on the third try. Probing must settle on 16.
        let rb = ReadBound::new(probe_cfg(16, vec![2, 16]));
        for _ in 0..2_000 {
            if rb.bound() == 2 {
                rb.note(2, true);
            } else {
                rb.note(3, false);
            }
        }
        assert!(rb.epochs() > 0, "contended reads must claim windows");
        assert_eq!(
            rb.cfg.ladder[rb.ctl.incumbent()],
            16,
            "escalation-heavy arms must lose to completing arms"
        );
    }

    #[test]
    fn uncontended_reads_never_touch_the_window() {
        let (exec, eng) = {
            let rt = Arc::new(HtmRuntime::new(HtmConfig::default()));
            let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
            let eng = ScxEngine::new(rt.clone(), domain);
            (
                ExecCtx::new(rt, Strategy::ThreePath)
                    .with_read_probe(ReadBoundConfig::default()),
                eng,
            )
        };
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        for _ in 0..100 {
            let r = exec.run_read_validated(&mut th, &mut stats, exec.read_attempts(), |_th| {
                Some(1u64)
            });
            assert_eq!(r, Some(1));
        }
        let rb = exec.read_bound().expect("probe configured");
        assert_eq!(rb.win.load(std::sync::atomic::Ordering::Relaxed), 0);
        assert_eq!(rb.epochs(), 0, "calm reads feed nothing");
    }

    #[test]
    fn contended_reads_feed_the_bound_through_the_exec_entrypoints() {
        let rt = Arc::new(HtmRuntime::new(HtmConfig::default()));
        let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
        let eng = ScxEngine::new(rt.clone(), domain);
        let exec = ExecCtx::new(rt, Strategy::ThreePath)
            .with_read_probe(probe_cfg(4, vec![2, 8]));
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        // Every read fails once then completes: contended, never
        // escalated.
        for _ in 0..64 {
            let mut calls = 0;
            exec.run_read_validated(&mut th, &mut stats, exec.read_attempts(), |_th| {
                calls += 1;
                (calls > 1).then_some(0u64)
            });
        }
        let rb = exec.read_bound().expect("probe configured");
        assert!(rb.epochs() > 0, "contended reads must turn windows");
        // Scans feed the same bound.
        let before = rb.epochs();
        for _ in 0..64 {
            let mut calls = 0;
            exec.run_scan(
                &mut th,
                &mut stats,
                exec.read_attempts(),
                |_th, _tally| {
                    calls += 1;
                    (calls > 1).then_some(0u64)
                },
                |_th, _tally| Some(0u64),
            );
        }
        assert!(rb.epochs() > before, "scan contention counts too");
    }

    #[test]
    fn degenerate_read_probe_tuning_is_rejected() {
        assert!(probe_cfg(1, vec![2, 4]).validate().is_err(), "tiny epoch");
        assert!(probe_cfg(64, vec![]).validate().is_err(), "empty ladder");
        assert!(probe_cfg(64, vec![4, 0]).validate().is_err(), "zero bound");
        assert!(probe_cfg(64, vec![2, 4]).validate().is_ok());
    }

    #[test]
    fn merge_subranges_coalesces_and_sorts() {
        assert_eq!(merge_subranges(vec![]), vec![]);
        assert_eq!(merge_subranges(vec![(5, 5), (9, 3)]), vec![], "empties dropped");
        assert_eq!(
            merge_subranges(vec![(10, 20), (5, 8), (19, 25), (8, 9)]),
            vec![(5, 9), (10, 25)],
            "overlap and adjacency coalesce, gaps stay split"
        );
        assert_eq!(
            merge_subranges(vec![(0, 1), (1, 2), (3, 4)]),
            vec![(0, 2), (3, 4)]
        );
    }
}
