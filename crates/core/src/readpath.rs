//! The uninstrumented read path.
//!
//! The template paper's headline property is that *searches require no
//! synchronization at all*: node keys are immutable and child pointers
//! change only through atomic SCX commits, so an epoch-pinned traversal is
//! linearizable with no HTM, no locks and no validation. [`run_op`] cannot
//! express that — every operation it drives pays transaction begin/abort
//! handling, lock/`F` subscription and attempt-budget tallying, and under
//! an abort storm read-only lookups needlessly fall back to the serialized
//! paths.
//!
//! This module is the dedicated entry for reads:
//!
//! * [`ExecCtx::run_read`] — a wait-free read: pin the epoch, run the
//!   direct traversal, record the completion on the
//!   [`PathKind::Read`] stats lane. No subscription, no budget tally, no
//!   fallback escalation. Correct whenever the traversal is linearizable
//!   on its own (the BST: immutable leaves, atomic pointer swings).
//! * [`ExecCtx::run_read_validated`] — an *optimistic* read for structures
//!   whose nodes mutate in place (the (a,b)-tree's leaves): each attempt
//!   performs a seqlock-validated traversal and reports `None` when the
//!   validation lost a race; after [`bounded`](DEFAULT_READ_ATTEMPTS)
//!   failures the read returns `None` to the caller, which escalates to
//!   the transactional machinery via [`run_op`]. Retries and escalations
//!   are tallied in [`PathStats`].
//!
//! [`run_op`]: ExecCtx::run_op

use threepath_llxscx::ScxThread;

use crate::driver::ExecCtx;
use crate::stats::{PathKind, PathStats};

/// Default bound on optimistic validation retries before a validated read
/// gives up and escalates to the transactional path. Validation fails only
/// while an in-place mutation of the traversed node is in flight, so in
/// the steady state a read never comes close to the bound; it exists so a
/// reader stalled behind a pathological mutation storm stays lock-free
/// rather than spinning forever.
pub const DEFAULT_READ_ATTEMPTS: u32 = 8;

impl ExecCtx {
    /// Runs a wait-free read-only operation: `body` executes exactly once
    /// under an epoch pin with plain direct memory access — no
    /// transaction, no lock or `F` subscription, no attempt budget — and
    /// its completion lands on the [`PathKind::Read`] stats lane.
    ///
    /// The caller asserts that `body`'s traversal is linearizable without
    /// validation (immutable node content; pointer changes are single
    /// atomic words). For structures that mutate nodes in place, use
    /// [`Self::run_read_validated`].
    pub fn run_read<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        body: impl FnOnce(&mut ScxThread) -> T,
    ) -> T {
        let v = th.pinned(body);
        stats.record_completed(PathKind::Read);
        v
    }

    /// Runs an optimistic read: `attempt` executes under an epoch pin and
    /// returns `None` when its seqlock validation failed (an in-place
    /// mutation raced the traversal), in which case it is retried up to
    /// `max_attempts` times in total.
    ///
    /// Returns `Some` with the read's result on success (recorded on the
    /// [`PathKind::Read`] lane, failed attempts tallied as
    /// [read retries](PathStats::read_retries)), or `None` once every
    /// attempt failed validation — recorded as a
    /// [read escalation](PathStats::read_escalations); the caller then
    /// routes the operation through [`Self::run_op`], whose paths do not
    /// rely on optimistic validation.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `max_attempts` is zero.
    pub fn run_read_validated<T>(
        &self,
        th: &mut ScxThread,
        stats: &mut PathStats,
        max_attempts: u32,
        mut attempt: impl FnMut(&mut ScxThread) -> Option<T>,
    ) -> Option<T> {
        debug_assert!(max_attempts > 0, "at least one optimistic attempt");
        let (out, failed) = th.pinned(|th| {
            for i in 0..max_attempts {
                if let Some(v) = attempt(th) {
                    return (Some(v), u64::from(i));
                }
            }
            (None, u64::from(max_attempts))
        });
        stats.add_read_retries(failed);
        match out {
            Some(v) => {
                stats.record_completed(PathKind::Read);
                Some(v)
            }
            None => {
                stats.record_read_escalation();
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use std::sync::Arc;
    use threepath_htm::{HtmConfig, HtmRuntime};
    use threepath_llxscx::ScxEngine;
    use threepath_reclaim::{Domain, ReclaimMode};

    fn setup() -> (ExecCtx, ScxEngine) {
        let rt = Arc::new(HtmRuntime::new(HtmConfig::default()));
        let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
        let eng = ScxEngine::new(rt.clone(), domain);
        (ExecCtx::new(rt, Strategy::ThreePath), eng)
    }

    #[test]
    fn run_read_pins_and_records_only_the_read_lane() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let v = exec.run_read(&mut th, &mut stats, |th| {
            assert!(th.reclaim.is_pinned(), "read body runs under a pin");
            42
        });
        assert_eq!(v, 42);
        assert!(!th.reclaim.is_pinned());
        assert_eq!(stats.completed(PathKind::Read), 1);
        for p in [PathKind::Fast, PathKind::Middle, PathKind::Fallback] {
            assert_eq!(stats.completed(p), 0);
            assert_eq!(stats.commits(p), 0);
            assert_eq!(stats.aborts(p).total(), 0);
        }
        assert_eq!(stats.read_retries(), 0);
        assert_eq!(stats.read_escalations(), 0);
    }

    #[test]
    fn validated_read_counts_retries_on_late_success() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let mut calls = 0;
        let r = exec.run_read_validated(&mut th, &mut stats, 8, |_th| {
            calls += 1;
            (calls == 3).then_some(7)
        });
        assert_eq!(r, Some(7));
        assert_eq!(calls, 3);
        assert_eq!(stats.completed(PathKind::Read), 1);
        assert_eq!(stats.read_retries(), 2, "two failed validations");
        assert_eq!(stats.read_escalations(), 0);
    }

    #[test]
    fn validated_read_escalates_after_the_bound() {
        let (exec, eng) = setup();
        let mut th = eng.register_thread();
        let mut stats = PathStats::new();
        let mut calls = 0u32;
        let r: Option<u64> = exec.run_read_validated(&mut th, &mut stats, 4, |_th| {
            calls += 1;
            None
        });
        assert_eq!(r, None);
        assert_eq!(calls, 4, "exactly max_attempts attempts");
        assert_eq!(stats.completed(PathKind::Read), 0, "no read completion");
        assert_eq!(stats.read_retries(), 4);
        assert_eq!(stats.read_escalations(), 1);
    }
}
