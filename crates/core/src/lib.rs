//! The accelerated tree-update template (the paper's primary contribution).
//!
//! An operation implemented with the tree-update template (Brown, Ellen,
//! Ruppert, PPoPP 2014) searches for a location, performs LLXs on a
//! connected subgraph, and issues one SCX that swings a child pointer and
//! finalizes the removed nodes. This crate provides the machinery to run
//! such operations on multiple *execution paths* and the policies that pick
//! a path — the design space explored by the paper (Section 5):
//!
//! | strategy | fast path | middle path | fallback path |
//! |---|---|---|---|
//! | [`Strategy::NonHtm`] | — | — | lock-free template (LLX/SCX) |
//! | [`Strategy::Tle`] | sequential code in a transaction, aborts if the global lock is held | — | sequential code under the global lock |
//! | [`Strategy::TwoPathCon`] | instrumented template in a transaction (HTM LLX/SCX), concurrent with the fallback | — | lock-free template |
//! | [`Strategy::TwoPathNonCon`] | sequential code in a transaction, aborts if `F != 0`, waits for `F = 0` | — | lock-free template, `F` incremented |
//! | [`Strategy::ThreePath`] | sequential code in a transaction, aborts if `F != 0`, **never waits** | instrumented template in a transaction | lock-free template, `F` incremented |
//!
//! The three-path algorithm is the paper's contribution: the fast path pays
//! no instrumentation (it cannot run concurrently with the fallback), and
//! when operations are stuck on the fallback path the middle path keeps
//! hardware transactions flowing instead of waiting (avoiding both TLE's
//! serialization and the lemming effect).
//!
//! Data structures plug in four closures (fast, middle, fallback,
//! sequential-under-lock) and this crate's [`ExecCtx::run_op`] drives
//! attempts, budgets, waiting, and statistics.
//!
//! Read-only operations do not go through `run_op` at all: the paper's
//! "searches require no synchronization" property gets a first-class
//! wait-free entry ([`ExecCtx::run_read`] /
//! [`ExecCtx::run_read_validated`] for point reads,
//! [`ExecCtx::run_scan`] / [`ExecCtx::run_scan_snap`] for multi-leaf range
//! scans) with its own [`PathKind::Read`] statistics lane — no
//! subscription, no budget tally, no fallback escalation until the
//! optimistic attempts *and* the [`SnapshotCtl`] snapshot tier are
//! exhausted.

#![warn(missing_docs)]

mod access;
mod admission;
mod batch;
mod budget;
pub mod controller;
mod driver;
mod effects;
mod readpath;
mod snapshot;
mod snzi;
mod stats;
mod strategy;
mod sync;
mod template;

pub use access::{DirectMem, Mem, TxMem};
pub use admission::AdmissionProbeConfig;
pub use batch::{BatchApply, BatchOp};
pub use budget::{AdaptiveBudgets, BudgetConfig, OpTally};
pub use controller::{Controller, ProbeConfig, ProbingController, Window};
pub use driver::{ExecCtx, StrategySwapError, ADAPTIVE_STRATEGIES};
pub use readpath::{merge_subranges, ReadBoundConfig, ScanTally, DEFAULT_READ_ATTEMPTS};
pub use effects::Effects;
pub use snapshot::{SnapToken, SnapshotCtl};
pub use stats::{AbortCounts, PathKind, PathStats};
pub use snzi::Snzi;
pub use strategy::{PathLimits, Strategy};
pub use sync::{AdmissionGate, FallbackCount, Indicator, TleLock};
pub use template::{OpOutcome, OrigMode, TemplateMem, TemplateMode, TxMode};
