//! Batched operation plans.
//!
//! A serving front-end coalesces N same-shard requests into one
//! [`BatchOp`] slice and hands it to the structure's batch entry point,
//! which commits the whole slice in a single fast-path transaction (or
//! one serialized critical section) via [`ExecCtx::run_batch`] — paying
//! the per-transaction toll (txn begin/end, budget/stats RMWs, epoch
//! pin) once per batch instead of once per operation.
//!
//! [`ExecCtx::run_batch`]: crate::ExecCtx::run_batch

/// One operation of a compiled batch plan. Every variant replies with
/// `Option<u64>`: the previous value for `Insert`, the removed value for
/// `Remove`, the current value for `Get`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or update a pair.
    Insert(u64, u64),
    /// Remove a key.
    Remove(u64),
    /// Look up a key.
    Get(u64),
}

impl BatchOp {
    /// The key this operation addresses (what a router shards on).
    pub fn key(&self) -> u64 {
        match *self {
            BatchOp::Insert(k, _) | BatchOp::Remove(k) | BatchOp::Get(k) => k,
        }
    }

    /// Whether the operation mutates the structure.
    pub fn is_update(&self) -> bool {
        !matches!(self, BatchOp::Get(_))
    }
}

impl std::fmt::Display for BatchOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BatchOp::Insert(k, v) => write!(f, "insert({k}, {v})"),
            BatchOp::Remove(k) => write!(f, "remove({k})"),
            BatchOp::Get(k) => write!(f, "get({k})"),
        }
    }
}

/// The flat-combining hook's view of a structure: while a thread holds a
/// shard's fallback lock for a batch, it may apply *further* batches on
/// behalf of queued submitters before releasing. The structure hands an
/// implementation of this trait to the combine closure; each
/// [`apply`](BatchApply::apply) runs one more batch under the same held
/// lock (one serialized section total, however many batches it drains).
pub trait BatchApply {
    /// Applies `ops` in order under the held exclusive section and
    /// returns the per-operation replies.
    fn apply(&mut self, ops: &[BatchOp]) -> Vec<Option<u64>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_and_update_flags() {
        assert_eq!(BatchOp::Insert(3, 9).key(), 3);
        assert_eq!(BatchOp::Remove(4).key(), 4);
        assert_eq!(BatchOp::Get(5).key(), 5);
        assert!(BatchOp::Insert(1, 1).is_update());
        assert!(BatchOp::Remove(1).is_update());
        assert!(!BatchOp::Get(1).is_update());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(BatchOp::Insert(1, 2).to_string(), "insert(1, 2)");
        assert_eq!(BatchOp::Remove(7).to_string(), "remove(7)");
        assert_eq!(BatchOp::Get(8).to_string(), "get(8)");
    }
}
