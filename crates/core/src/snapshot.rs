//! Bonsai-style snapshot tier for optimistic scans.
//!
//! When the optimistic scan ladder (bounded full walks, then the
//! hole-repair partial rescan) keeps losing races, the scan stops
//! *validating* and starts *versioning*: it publishes a snapshot epoch over
//! its key range, and from then on every updater whose mutation is covered
//! by the epoch first pushes the mutated key's **pre-image** onto an
//! epoch-tagged version chain. The scan then walks the live tree with no
//! validation at all and overlays the harvested pre-images, reconstructing
//! the exact key/value map as of the snapshot's linearization instant —
//! the BonsaiTree shape ("writes version, reads are wait-free"), grafted
//! onto the template structures without making the update paths
//! copy-on-write in the common case.
//!
//! # Protocol
//!
//! One [`SnapshotCtl`] per tree holds four cells: `active` (the published
//! epoch id, `0` when idle), the covered range `lo`/`hi`, and `head`, the
//! top of a Treiber-style chain of [`SnapNode`] pre-images.
//!
//! **Publish** ([`SnapshotCtl::begin`]): reserve `active` with a direct CAS
//! `0 -> BUSY`, install `lo`/`hi`, then store the fresh epoch id. The CAS
//! bumps `active`'s line clock, which conflict-aborts every in-flight
//! transaction that read `active == 0` — so every transaction that commits
//! after the publish ran its deposit check against the published epoch.
//!
//! **Cut**: the snapshot linearizes at an instant `T*` inside a *stable
//! window* — a span in which `head` is observed unchanged (`h1 == h2`)
//! around one observation of the fallback indicator `F` inactive and the
//! TLE lock free. `h_cut = h1` then splits the chain exactly:
//!
//! * a *transactional* deposit is pushed at its commit instant, so a
//!   deposit on the chain above `h_cut` commits after `T*` and one at or
//!   below `h_cut` commits before;
//! * a *non-transactional* operation (software fallback, or under the TLE
//!   lock) pushes strictly before its mutation lands, but it holds `F`
//!   (respectively the lock) across that whole span — an operation
//!   straddling `T*` would have kept `F`/the lock active through the
//!   window, contradicting the observation, and a transactional push inside
//!   the window would have moved `head`. So no deposit/mutation pair
//!   straddles the cut.
//!
//! If the window cannot be stabilized within a bounded number of probes
//! (sustained fallback pressure), `begin` abandons the epoch and the scan
//! escalates to a transaction as before.
//!
//! **Walk**: between `begin` and [`SnapshotCtl::finish`] the scan walks the
//! live tree with plain direct loads — no version checks, no read-set. Any
//! value it reads that postdates `T*` belongs to a covered mutation that
//! committed after `T*`, which by the publish argument deposited its
//! pre-image above `h_cut`.
//!
//! **Finish**: clear `active`, detach the chain with a CAS loop, and
//! harvest every node strictly above `h_cut` newest-to-oldest into an
//! overlay map (later inserts overwrite, so the *oldest* deposit per key
//! wins — the value as of `T*`). Overlay keys replace whatever the walk
//! saw; every detached node is retired through the epoch domain. Deposits
//! that raced `finish` and pushed onto the empty head are orphans: they are
//! excluded by the next cut (they sit below the next `h_cut` only if
//! pushed before it, and their mutations predate the next `T*`) and
//! retired by the next drain.
//!
//! Pre-images of *failed* operations (an SCX that lost its race after
//! depositing, a validation abort whose transactional push was discarded
//! with the transaction) are harmless: an extra pre-image deposit for a key
//! either duplicates an older one (oldest wins) or records the very value
//! the walk would have seen anyway.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use threepath_htm::{Abort, HtmRuntime, TxCell};
use threepath_reclaim::ReclaimCtx;

use crate::access::Mem;
use crate::driver::ExecCtx;

/// `active` value while a publisher owns the epoch but `lo`/`hi` are not
/// yet installed. Depositors seeing it push unconditionally (range unknown
/// for one publish instant); the extra nodes are retired with the rest.
const BUSY: u64 = u64::MAX;

/// Bounded yields waiting for a concurrent publisher before giving up.
const PUBLISH_RETRIES: u32 = 8;

/// Bounded attempts to stabilize a cut window before abandoning the epoch.
const CUT_RETRIES: u32 = 16;

/// Per-attempt probes of the fallback indicator and TLE lock.
const QUIET_SPINS: u32 = 1 << 12;

/// One pre-image on the version chain: the covered key and the value it
/// held (or its absence) just before a mutation. Immutable once published
/// via the `head` CAS.
struct SnapNode {
    key: u64,
    value: u64,
    present: bool,
    /// Next-older chain node (`*mut SnapNode` as bits, `0` = end). Written
    /// by the pusher before the publishing CAS, never after.
    next: u64,
}

/// A published snapshot epoch: its id and the chain cut `h_cut`.
/// Returned by [`SnapshotCtl::begin`], consumed by [`SnapshotCtl::finish`].
pub struct SnapToken {
    id: u64,
    h_cut: u64,
}

/// Per-tree snapshot coordination state. See the module docs for the
/// protocol and its linearizability argument.
pub struct SnapshotCtl {
    /// Published epoch id; `0` idle, [`BUSY`] while `lo`/`hi` install.
    active: TxCell,
    /// Covered range, valid while `active` holds an epoch id.
    lo: TxCell,
    hi: TxCell,
    /// Top of the pre-image chain (`*mut SnapNode` as bits).
    head: TxCell,
    next_id: AtomicU64,
}

impl Default for SnapshotCtl {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotCtl {
    /// Creates an idle controller.
    pub fn new() -> Self {
        SnapshotCtl {
            active: TxCell::new(0),
            lo: TxCell::new(0),
            hi: TxCell::new(0),
            head: TxCell::new(0),
            next_id: AtomicU64::new(1),
        }
    }

    /// Whether a snapshot epoch is currently published (diagnostics).
    pub fn is_active(&self, rt: &HtmRuntime) -> bool {
        self.active.load_direct(rt) != 0
    }

    /// Publishes a snapshot epoch over `[lo, hi)` and cuts the chain.
    ///
    /// Returns `None` when another snapshot holds the epoch or the cut
    /// window cannot be stabilized under sustained fallback pressure — the
    /// caller escalates the scan to a transaction instead. On `None` any
    /// deposits collected meanwhile are drained and retired.
    ///
    /// The caller must hold an epoch pin from before this call until after
    /// [`Self::finish`] returns.
    pub fn begin(
        &self,
        exec: &ExecCtx,
        reclaim: &ReclaimCtx,
        lo: u64,
        hi: u64,
    ) -> Option<SnapToken> {
        debug_assert!(reclaim.is_pinned());
        let rt = &**exec.runtime();
        let mut tries = 0u32;
        while self.active.cas_direct(rt, 0, BUSY).is_err() {
            tries += 1;
            if tries > PUBLISH_RETRIES {
                return None;
            }
            std::thread::yield_now();
        }
        self.lo.store_direct(rt, lo);
        self.hi.store_direct(rt, hi);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        debug_assert!(id != 0 && id != BUSY);
        self.active.store_direct(rt, id);

        for _ in 0..CUT_RETRIES {
            let h1 = self.head.load_direct(rt);
            if !exec.observe_quiet(QUIET_SPINS) {
                continue;
            }
            let h2 = self.head.load_direct(rt);
            if h1 == h2 {
                return Some(SnapToken { id, h_cut: h1 });
            }
        }
        // The serialized machinery never went quiet with a stable head:
        // abandon the epoch and let the scan escalate.
        self.active.store_direct(rt, 0);
        self.drain(rt, reclaim);
        None
    }

    /// Ends the epoch and merges the harvested pre-images into `walk`, the
    /// key/value pairs the unvalidated tree walk produced for `[lo, hi)`.
    /// Returns the snapshot-consistent result as of the cut instant,
    /// sorted by key.
    pub fn finish(
        &self,
        exec: &ExecCtx,
        reclaim: &ReclaimCtx,
        token: SnapToken,
        mut walk: Vec<(u64, u64)>,
        lo: u64,
        hi: u64,
    ) -> Vec<(u64, u64)> {
        debug_assert!(reclaim.is_pinned());
        let rt = &**exec.runtime();
        debug_assert_eq!(self.active.load_direct(rt), token.id);
        self.active.store_direct(rt, 0);

        let h = self.detach(rt);
        // Newest-to-oldest with overwriting inserts: the oldest (first
        // pushed) pre-image per key survives — the value as of the cut.
        let mut overlay: HashMap<u64, Option<u64>> = HashMap::new();
        let mut past_cut = false;
        let mut p = h;
        while p != 0 {
            if p == token.h_cut {
                past_cut = true;
            }
            let n = p as *mut SnapNode;
            // SAFETY: detached chain nodes stay alive until retired below,
            // and retirement defers past our epoch pin.
            let node = unsafe { &*n };
            let next = node.next;
            if !past_cut {
                overlay.insert(node.key, node.present.then_some(node.value));
            }
            // SAFETY: the chain is detached — `n` is unreachable from any
            // shared cell and visited exactly once.
            unsafe { reclaim.retire_node(n) };
            p = next;
        }

        if !overlay.is_empty() {
            walk.retain(|(k, _)| !overlay.contains_key(k));
            for (k, v) in overlay {
                if let Some(value) = v {
                    if lo <= k && k < hi {
                        walk.push((k, value));
                    }
                }
            }
            walk.sort_unstable();
        }
        walk
    }

    /// Whether a snapshot epoch is armed, read through the caller's memory
    /// mode. In transactional modes this *subscribes* the transaction to
    /// the epoch word exactly like [`Self::deposit`] does, so a `false`
    /// answer is sound: a publish racing this transaction aborts it.
    /// Callers that deposit many pre-images per operation (whole-leaf
    /// deposits) use this to pay one read instead of one per pair when no
    /// epoch is active.
    pub fn armed<M: Mem>(&self, m: &mut M) -> Result<bool, Abort> {
        Ok(m.read(&self.active)? != 0)
    }

    /// Pushes a pre-image for `key` if a snapshot epoch covering it is
    /// active. `pre` is the key's value just before the caller's mutation
    /// (`None` = absent, i.e. the mutation is an insert of a new key).
    ///
    /// Call from every mutating operation *within the same atomic scope as
    /// the mutation* (same transaction) or — on non-transactional paths —
    /// while holding the fallback indicator or the TLE lock from before
    /// the push until after the mutation; the cut's stable-window argument
    /// relies on exactly this.
    pub fn deposit<M: Mem>(&self, m: &mut M, key: u64, pre: Option<u64>) -> Result<(), Abort> {
        let a = m.read(&self.active)?;
        if a == 0 {
            return Ok(());
        }
        if a != BUSY {
            let lo = m.read(&self.lo)?;
            let hi = m.read(&self.hi)?;
            if key < lo || key >= hi {
                return Ok(());
            }
        }
        let node = m.alloc(SnapNode {
            key,
            value: pre.unwrap_or(0),
            present: pre.is_some(),
            next: 0,
        });
        loop {
            let h = m.read(&self.head)?;
            // SAFETY: `node` is unpublished — this thread is its sole owner
            // until the CAS below succeeds (transactional modes publish
            // atomically at commit; an abort returns it to the pool).
            unsafe { (*node).next = h };
            if m.cas(&self.head, h, node as u64)? {
                return Ok(());
            }
        }
    }

    /// Detaches and retires the whole chain without harvesting (abandoned
    /// epochs). Safe to call while pinned at any idle point.
    fn drain(&self, rt: &HtmRuntime, reclaim: &ReclaimCtx) {
        let mut p = self.detach(rt);
        while p != 0 {
            let n = p as *mut SnapNode;
            // SAFETY: as in `finish` — detached, visited once, alive until
            // the deferred retirement fires.
            let next = unsafe { (*n).next };
            unsafe { reclaim.retire_node(n) };
            p = next;
        }
    }

    fn detach(&self, rt: &HtmRuntime) -> u64 {
        loop {
            let h = self.head.load_direct(rt);
            if h == 0 || self.head.cas_direct(rt, h, 0).is_ok() {
                return h;
            }
        }
    }
}

// Chain nodes are plain `Send` data reached only through `head`.
unsafe impl Send for SnapshotCtl {}
unsafe impl Sync for SnapshotCtl {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{DirectMem, TxMem};
    use crate::driver::ExecCtx;
    use crate::effects::Effects;
    use crate::strategy::Strategy;
    use std::sync::Arc;
    use threepath_htm::{HtmConfig, HtmRuntime};
    use threepath_reclaim::{Domain, ReclaimMode};

    fn setup() -> (ExecCtx, Arc<Domain>) {
        let rt = Arc::new(HtmRuntime::new(HtmConfig::default()));
        (
            ExecCtx::new(rt, Strategy::ThreePath),
            Arc::new(Domain::new(ReclaimMode::Epoch)),
        )
    }

    #[test]
    fn idle_deposit_is_a_no_op() {
        let (exec, domain) = setup();
        let ctx = Domain::register(&domain);
        ctx.enter();
        let snap = SnapshotCtl::new();
        let mut m = DirectMem::new(exec.runtime(), &ctx);
        snap.deposit(&mut m, 7, Some(70)).unwrap();
        assert_eq!(snap.head.load_direct(exec.runtime()), 0);
        ctx.exit();
    }

    #[test]
    fn concurrent_publish_is_refused() {
        let (exec, domain) = setup();
        let ctx = Domain::register(&domain);
        ctx.enter();
        let snap = SnapshotCtl::new();
        let t = snap.begin(&exec, &ctx, 0, 100).expect("quiet publish");
        assert!(snap.is_active(exec.runtime()));
        assert!(snap.begin(&exec, &ctx, 0, 100).is_none());
        let out = snap.finish(&exec, &ctx, t, vec![], 0, 100);
        assert!(out.is_empty());
        assert!(!snap.is_active(exec.runtime()));
        ctx.exit();
    }

    #[test]
    fn fallback_pressure_abandons_the_cut() {
        let (exec, domain) = setup();
        let ctx = Domain::register(&domain);
        ctx.enter();
        let snap = SnapshotCtl::new();
        exec.fallback_indicator().arrive(exec.runtime(), 0);
        assert!(snap.begin(&exec, &ctx, 0, 100).is_none());
        assert!(!snap.is_active(exec.runtime()));
        exec.fallback_indicator().depart(exec.runtime(), 0);
        // The machinery is quiet again: publishing works.
        let t = snap.begin(&exec, &ctx, 0, 100).expect("quiet publish");
        snap.finish(&exec, &ctx, t, vec![], 0, 100);
        ctx.exit();
    }

    #[test]
    fn overlay_chain_restores_the_cut_state() {
        let (exec, domain) = setup();
        let ctx = Domain::register(&domain);
        ctx.enter();
        let snap = SnapshotCtl::new();
        let t = snap.begin(&exec, &ctx, 10, 100).expect("quiet publish");
        let mut m = DirectMem::new(exec.runtime(), &ctx);
        // Covered overwrite: pre-image 50 for key 20 (walk later sees 55).
        snap.deposit(&mut m, 20, Some(50)).unwrap();
        // Second mutation of the same key: first push must win.
        snap.deposit(&mut m, 20, Some(55)).unwrap();
        // Covered insert of a fresh key: pre-image "absent".
        snap.deposit(&mut m, 30, None).unwrap();
        // Covered delete: pre-image present, walk won't see the key.
        snap.deposit(&mut m, 40, Some(400)).unwrap();
        // Out of range: skipped entirely.
        snap.deposit(&mut m, 5, Some(5)).unwrap();

        let walk = vec![(20, 55), (30, 300), (60, 600)];
        let out = snap.finish(&exec, &ctx, t, walk, 10, 100);
        assert_eq!(out, vec![(20, 50), (40, 400), (60, 600)]);
        assert_eq!(snap.head.load_direct(exec.runtime()), 0);
        ctx.exit();
    }

    #[test]
    fn pre_cut_chain_nodes_are_excluded_and_retired() {
        let (exec, domain) = setup();
        let ctx = Domain::register(&domain);
        ctx.enter();
        let snap = SnapshotCtl::new();
        // Plant a stale node on the chain before publishing (models an
        // orphan push that raced a previous finish).
        let stale = ctx.alloc(SnapNode {
            key: 20,
            value: 999,
            present: true,
            next: 0,
        });
        snap.head.store_direct(exec.runtime(), stale as u64);

        let t = snap.begin(&exec, &ctx, 10, 100).expect("quiet publish");
        assert_eq!(t.h_cut, stale as u64);
        let mut m = DirectMem::new(exec.runtime(), &ctx);
        snap.deposit(&mut m, 20, Some(50)).unwrap();

        let retired_before = domain.retired_total();
        let out = snap.finish(&exec, &ctx, t, vec![(20, 55)], 10, 100);
        // The stale pre-image below the cut must not leak into the overlay…
        assert_eq!(out, vec![(20, 50)]);
        // …but it is still reclaimed along with the harvested node.
        assert_eq!(domain.retired_total(), retired_before + 2);
        ctx.exit();
    }

    #[test]
    fn transactional_deposits_publish_at_commit_and_vanish_on_abort() {
        let (exec, domain) = setup();
        let ctx = Domain::register(&domain);
        ctx.enter();
        let snap = SnapshotCtl::new();
        let t = snap.begin(&exec, &ctx, 0, 100).expect("quiet publish");

        let rt = exec.runtime().clone();
        let mut th = rt.register_thread();

        // Aborted transaction: the push is buffered and discarded.
        let mut eff = Effects::new();
        let _: Result<(), _> = rt.attempt(&mut th, |tx| {
            let mut m = TxMem::new(tx, &mut eff, &ctx);
            snap.deposit(&mut m, 7, Some(70))?;
            Err(tx.abort(0))
        });
        eff.abort_cleanup(&ctx);
        assert_eq!(snap.head.load_direct(&rt), 0);

        // Committed transaction: the push lands. (No deferred effects to
        // apply — deposits only allocate, and commit keeps allocations.)
        let mut eff = Effects::new();
        rt.attempt(&mut th, |tx| {
            let mut m = TxMem::new(tx, &mut eff, &ctx);
            snap.deposit(&mut m, 7, Some(70))
        })
        .unwrap();
        assert_ne!(snap.head.load_direct(&rt), 0);

        let out = snap.finish(&exec, &ctx, t, vec![(7, 77)], 0, 100);
        assert_eq!(out, vec![(7, 70)]);
        ctx.exit();
    }
}
