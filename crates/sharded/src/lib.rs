//! Key-space-sharded map layer over the three-path template trees, with
//! pluggable routing and per-shard adaptive strategy.
//!
//! A single template tree owns one HTM runtime and one reclamation domain,
//! so under heavy traffic every hardware transaction in the process
//! contends on the same conflict-detection state and every retired node
//! funnels through the same limbo bags. [`ShardedMap`] partitions the key
//! space into `N` shards and gives each shard its **own** tree — own
//! simulated-HTM runtime, own epoch-reclamation domain, own fallback
//! indicator — so operations on different shards never interact and the
//! paper's per-tree correctness argument applies to each shard unchanged.
//!
//! Two policy axes sit on top of the partition:
//!
//! * **Routing** ([`Router`]): [`RangeRouter`] keeps contiguous ranges —
//!   global order is preserved and cross-shard range queries concatenate
//!   per-shard queries in order; [`HashRouter`] stripes keys by
//!   multiplicative hash — key-local skew load-balances across shards,
//!   and range queries degrade to a sort-merge over every shard (the
//!   trait makes the trade explicit via [`Router::preserves_order`]).
//! * **Strategy** ([`AdaptiveController`]): fixed per-map by default, or
//!   — with [`ShardedConfig::adaptive`] — probed per shard: each shard
//!   measures TLE and the 3-path algorithm against each other
//!   (completed-ops throughput per decision window) and runs whichever
//!   one is empirically faster, without any cross-shard coordination.
//!
//! Each per-shard query is individually atomic (a consistent snapshot of
//! that shard); a cross-shard range query is **not** a single atomic
//! snapshot of the whole map — see [`ShardedHandle::range_query`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use threepath_sharded::{RouterKind, ShardBackend, ShardedConfig, ShardedMap};
//!
//! let map = Arc::new(ShardedMap::with_config(ShardedConfig {
//!     shards: 4,
//!     key_space: 1000,
//!     backend: ShardBackend::Bst,
//!     router: RouterKind::Range,
//!     ..ShardedConfig::default()
//! }).expect("valid config"));
//! let mut h = map.handle();
//! h.insert(10, 1);   // shard 0
//! h.insert(990, 2);  // shard 3
//! assert_eq!(h.get(10), Some(1));
//! assert_eq!(h.range_query(0, 1000), vec![(10, 1), (990, 2)]);
//! assert_eq!(map.len(), 2);
//! assert_eq!(map.key_sum(), 1000);
//! ```

#![warn(missing_docs)]

mod adaptive;
mod map;
mod persist;
mod router;
mod tree;

pub use adaptive::{AdaptiveConfig, AdaptiveController, ControllerFactory};
pub use map::{merge_sorted_runs, ShardedConfig, ShardedHandle, ShardedMap};
pub use router::{ConfigError, HashRouter, RangeRouter, Router, RouterKind};
pub use tree::{ShardBackend, ShardHandle, ShardTree};
// The durability layer's public surface, re-exported so callers can
// configure persistence ([`ShardedConfig::persist`]) and interpret
// [`ShardedMap::recover`] results without naming the persist crate.
pub use threepath_persist::{
    FailPoints, FsyncPolicy, PersistConfig, PersistError, RecoveryReport, WalStats,
};
