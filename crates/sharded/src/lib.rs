//! Key-space-sharded map layer over the three-path template trees.
//!
//! A single template tree owns one HTM runtime and one reclamation domain,
//! so under heavy traffic every hardware transaction in the process
//! contends on the same conflict-detection state and every retired node
//! funnels through the same limbo bags. [`ShardedMap`] partitions the key
//! space into `N` contiguous ranges and gives each range its **own**
//! tree — own simulated-HTM runtime, own epoch-reclamation domain, own
//! fallback indicator — so operations on different shards never interact
//! and the paper's per-tree correctness argument applies to each shard
//! unchanged.
//!
//! Shards are *range* partitions (`shard = key / width`), so keys in shard
//! `i` are all smaller than keys in shard `i + 1` and a cross-shard range
//! query is just the concatenation of per-shard range queries in shard
//! order. Each per-shard query is individually atomic (a consistent
//! snapshot of that shard); the concatenation is **not** a single atomic
//! snapshot of the whole map — see [`ShardedHandle::range_query`].
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use threepath_sharded::{ShardBackend, ShardedConfig, ShardedMap};
//!
//! let map = Arc::new(ShardedMap::with_config(ShardedConfig {
//!     shards: 4,
//!     key_space: 1000,
//!     backend: ShardBackend::Bst,
//!     ..ShardedConfig::default()
//! }));
//! let mut h = map.handle();
//! h.insert(10, 1);   // shard 0
//! h.insert(990, 2);  // shard 3
//! assert_eq!(h.get(10), Some(1));
//! assert_eq!(h.range_query(0, 1000), vec![(10, 1), (990, 2)]);
//! assert_eq!(map.len(), 2);
//! assert_eq!(map.key_sum(), 1000);
//! ```

#![warn(missing_docs)]

mod map;

pub use map::{ShardBackend, ShardHandle, ShardTree, ShardedConfig, ShardedHandle, ShardedMap};
