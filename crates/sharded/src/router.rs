//! Pluggable shard routing: the policy deciding which shard owns which
//! key, and which shards a range query must visit.
//!
//! Two built-in policies:
//!
//! * [`RangeRouter`] — contiguous key ranges (shard `i` owns
//!   `[i·width, (i+1)·width)`). Keys in shard `i` are all smaller than
//!   keys in shard `i + 1`, so cross-shard range queries are a cheap
//!   in-order concatenation, but key-local skew (hot keys clustered in
//!   one range) lands entirely on one shard.
//! * [`HashRouter`] — multiplicative-hash striping. Hot keys spread
//!   evenly over shards regardless of where they sit in the key space,
//!   but the global order is lost: a cross-shard range query degrades to
//!   querying **every** shard and sort-merging the per-shard results —
//!   the trait makes this cost explicit via
//!   [`Router::preserves_order`].

use std::fmt;
use std::str::FromStr;

/// Error constructing a sharded-layer component from an invalid
/// configuration. Returned (never panicked) by [`crate::ShardedMap`] and
/// router constructors so callers can surface misconfiguration as data.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `shards == 0`: the partition would be empty.
    ZeroShards,
    /// An adaptive controller was requested with a starting strategy the
    /// runtime swap cannot handle (only TLE and 3-path participate).
    AdaptiveStrategy(threepath_core::Strategy),
    /// A degenerate adaptive cadence: `sample_every` of zero, or an
    /// `epoch_ops` below 2 (one-operation windows carry no comparative
    /// signal) or beyond `2^30`.
    ZeroAdaptiveInterval,
    /// Degenerate adaptive-budget tuning (any condition
    /// `threepath_core::BudgetConfig::validate` rejects: out-of-range
    /// `epoch_ops`, zero `min_attempts`/`max_scale`, or a bad probe
    /// cadence).
    InvalidBudget,
    /// Degenerate probe/settle tuning for the adaptive strategy
    /// controller (what `threepath_core::ProbeConfig::validate`
    /// rejects).
    InvalidProbe(&'static str),
    /// Degenerate read-escalation probe tuning (what
    /// `threepath_core::ReadBoundConfig::validate` rejects).
    InvalidReadProbe(&'static str),
    /// A custom [`ControllerFactory`](crate::ControllerFactory) built a
    /// controller whose arm count does not cover
    /// `threepath_core::ADAPTIVE_STRATEGIES`.
    ControllerArity {
        /// Arms the supplied controller has.
        arms: usize,
        /// Arms the strategy set requires.
        expected: usize,
    },
    /// An HTM admission window of zero threads: nobody could ever run
    /// the fast path while the fallback lock is held.
    ZeroAdmissionWindow,
    /// Degenerate admission-probe tuning (what
    /// `threepath_core::AdmissionProbeConfig::validate` rejects).
    InvalidAdmissionProbe(&'static str),
    /// Batching was requested with a strategy the batch entry point
    /// cannot run on (only TLE and 3-path have the single-transaction
    /// fast path plus serialized section a batch commits through).
    BatchedStrategy(threepath_core::Strategy),
    /// A per-shard HTM override names a shard index `>= shards`.
    OverrideOutOfRange {
        /// The offending shard index.
        shard: usize,
        /// The configured shard count.
        shards: usize,
    },
    /// A custom router disagrees with the configured shard count.
    RouterShardMismatch {
        /// `Router::shard_count()` of the supplied router.
        router: usize,
        /// The configured shard count.
        shards: usize,
    },
    /// The durability layer rejected the configuration or the on-disk
    /// state (invalid tuning, a directory that would be clobbered, a
    /// manifest disagreeing with the configured layout, corrupt
    /// snapshot/log state — see [`threepath_persist::PersistError`]).
    Persist(threepath_persist::PersistError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroShards => f.write_str("shard count must be at least 1"),
            ConfigError::AdaptiveStrategy(s) => write!(
                f,
                "adaptive controllers can only start on tle or 3-path, not `{s}`"
            ),
            ConfigError::ZeroAdaptiveInterval => f.write_str(
                "adaptive sample_every must be non-zero and epoch_ops in 2..=2^30",
            ),
            ConfigError::InvalidBudget => f.write_str(
                "budget tuning must have epoch_ops in 2..=2^30, non-zero \
                 min_attempts/max_scale, and a valid probe cadence",
            ),
            ConfigError::InvalidProbe(why) => {
                write!(f, "adaptive probe tuning rejected: {why}")
            }
            ConfigError::InvalidReadProbe(why) => {
                write!(f, "read-escalation probe tuning rejected: {why}")
            }
            ConfigError::ControllerArity { arms, expected } => write!(
                f,
                "custom controller has {arms} arms but the adaptive strategy set needs {expected}"
            ),
            ConfigError::ZeroAdmissionWindow => {
                f.write_str("the HTM admission window must admit at least one thread")
            }
            ConfigError::InvalidAdmissionProbe(why) => {
                write!(f, "admission-probe tuning rejected: {why}")
            }
            ConfigError::BatchedStrategy(s) => write!(
                f,
                "batched maps require the TLE or 3-path strategy, not `{s}`"
            ),
            ConfigError::OverrideOutOfRange { shard, shards } => write!(
                f,
                "per-shard HTM override for shard {shard}, but only {shards} shards exist"
            ),
            ConfigError::RouterShardMismatch { router, shards } => write!(
                f,
                "router partitions {router} shards but the map was configured with {shards}"
            ),
            ConfigError::Persist(e) => write!(f, "persistence: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The shard-routing policy of a [`ShardedMap`](crate::ShardedMap).
///
/// A router is a **total** function from keys to shard indices in
/// `[0, shard_count)`; every key is owned by exactly one shard. Range
/// queries consult [`Router::shards_for_range`], which returns the shards
/// that may own keys in `[lo, hi)` together with the clamped sub-range to
/// ask each shard for.
pub trait Router: Send + Sync + fmt::Debug {
    /// Number of shards this router partitions across.
    fn shard_count(&self) -> usize;

    /// Which shard owns `key`.
    fn route(&self, key: u64) -> usize;

    /// The shards a range query over `[lo, hi)` must visit, as
    /// `(shard, lo, hi)` triples (each shard queried over its clamped
    /// sub-range). Shards appear at most once. When
    /// [`preserves_order`](Router::preserves_order) is true they must be
    /// listed in ascending key order.
    fn shards_for_range(&self, lo: u64, hi: u64) -> Vec<(usize, u64, u64)>;

    /// Whether routing preserves the global key order across shards
    /// (shard `i`'s keys all smaller than shard `i + 1`'s). When true, a
    /// cross-shard range query is an in-order concatenation; when false
    /// it is a sort-merge over every visited shard's results.
    fn preserves_order(&self) -> bool;
}

/// Contiguous range partitioning (the PR 2 behaviour): shard `i` owns
/// `[i·width, (i+1)·width)` with `width = ceil(key_space / shards)`; the
/// last shard additionally owns every key `>= key_space`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeRouter {
    shards: usize,
    width: u64,
}

impl RangeRouter {
    /// A router over `shards` contiguous ranges covering
    /// `[0, key_space)`.
    pub fn new(shards: usize, key_space: u64) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        Ok(RangeRouter {
            shards,
            width: key_space.div_ceil(shards as u64).max(1),
        })
    }

    /// The width of each shard's range.
    pub fn width(&self) -> u64 {
        self.width
    }
}

impl Router for RangeRouter {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn route(&self, key: u64) -> usize {
        ((key / self.width) as usize).min(self.shards - 1)
    }

    fn shards_for_range(&self, lo: u64, hi: u64) -> Vec<(usize, u64, u64)> {
        if lo >= hi {
            return Vec::new();
        }
        let first = self.route(lo);
        let last = self.route(hi - 1);
        (first..=last)
            .filter_map(|s| {
                // Clamp to the shard's own range; the last shard is
                // unbounded above (it also owns keys >= key_space).
                let slo = lo.max(s as u64 * self.width);
                let shi = if s == self.shards - 1 {
                    hi
                } else {
                    hi.min((s as u64 + 1) * self.width)
                };
                (slo < shi).then_some((s, slo, shi))
            })
            .collect()
    }

    fn preserves_order(&self) -> bool {
        true
    }
}

/// Multiplicative-hash striping: shard = high bits of
/// `key · 0x9E3779B97F4A7C15`, scaled to the shard count by fixed-point
/// multiplication (no modulo bias; [`threepath_htm::fib_scatter`], the
/// same mapping the workload crate scatters Zipf ranks with). Load
/// balances arbitrary key-local skew at the price of global order — see
/// the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRouter {
    shards: usize,
}

impl HashRouter {
    /// A router striping keys over `shards` shards.
    pub fn new(shards: usize) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        Ok(HashRouter { shards })
    }
}

impl Router for HashRouter {
    fn shard_count(&self) -> usize {
        self.shards
    }

    fn route(&self, key: u64) -> usize {
        threepath_htm::fib_scatter(key, self.shards as u64) as usize
    }

    fn shards_for_range(&self, lo: u64, hi: u64) -> Vec<(usize, u64, u64)> {
        if lo >= hi {
            return Vec::new();
        }
        let span = hi - lo;
        // A window no wider than the shard count cannot touch more
        // shards than it has keys: route each key and deduplicate,
        // instead of fanning out to every shard.
        if span <= self.shards as u64 {
            let mut shards: Vec<usize> = (lo..hi).map(|k| self.route(k)).collect();
            shards.sort_unstable();
            shards.dedup();
            return shards.into_iter().map(|s| (s, lo, hi)).collect();
        }
        (0..self.shards).map(|s| (s, lo, hi)).collect()
    }

    fn preserves_order(&self) -> bool {
        false
    }
}

/// Which built-in router a [`ShardedConfig`](crate::ShardedConfig)
/// selects. Custom policies implement [`Router`] directly and go through
/// [`ShardedMap::with_router`](crate::ShardedMap::with_router).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RouterKind {
    /// Contiguous range partitioning ([`RangeRouter`]).
    #[default]
    Range,
    /// Multiplicative-hash striping ([`HashRouter`]).
    Hash,
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RouterKind::Range => "range",
            RouterKind::Hash => "hash",
        })
    }
}

/// Error parsing a [`RouterKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRouterError(String);

impl fmt::Display for ParseRouterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown router `{}`", self.0)
    }
}

impl std::error::Error for ParseRouterError {}

impl FromStr for RouterKind {
    type Err = ParseRouterError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "range" => Ok(RouterKind::Range),
            "hash" => Ok(RouterKind::Hash),
            other => Err(ParseRouterError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_router_matches_pr2_partitioning() {
        let r = RangeRouter::new(4, 100).unwrap();
        assert_eq!(r.width(), 25);
        assert_eq!(r.route(0), 0);
        assert_eq!(r.route(24), 0);
        assert_eq!(r.route(25), 1);
        assert_eq!(r.route(99), 3);
        // Overflow keys route to the last shard.
        assert_eq!(r.route(100), 3);
        assert_eq!(r.route(u64::MAX), 3);
        assert!(r.preserves_order());
    }

    #[test]
    fn range_router_plans_clamped_subranges_in_order() {
        let r = RangeRouter::new(4, 100).unwrap();
        assert_eq!(
            r.shards_for_range(10, 80),
            vec![(0, 10, 25), (1, 25, 50), (2, 50, 75), (3, 75, 80)]
        );
        assert_eq!(r.shards_for_range(30, 40), vec![(1, 30, 40)]);
        // The last shard's plan is unbounded above.
        assert_eq!(r.shards_for_range(90, u64::MAX), vec![(3, 90, u64::MAX)]);
        assert_eq!(r.shards_for_range(50, 50), vec![]);
        assert_eq!(r.shards_for_range(80, 10), vec![]);
    }

    #[test]
    fn hash_router_is_total_and_balanced() {
        let r = HashRouter::new(8).unwrap();
        assert!(!r.preserves_order());
        let mut counts = [0usize; 8];
        for k in 0..8000u64 {
            let s = r.route(k);
            assert!(s < 8);
            counts[s] += 1;
        }
        // Multiplicative hashing of consecutive keys is near-perfectly
        // balanced; allow generous slack anyway.
        for (s, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "shard {s} holds {c} of 8000");
        }
    }

    #[test]
    fn hash_router_range_plans_cover_all_routes() {
        let r = HashRouter::new(4).unwrap();
        // Wide window: every shard is visited.
        assert_eq!(r.shards_for_range(0, 1000).len(), 4);
        // Tiny window: only the shards the keys actually route to.
        let plan = r.shards_for_range(10, 13);
        let planned: std::collections::BTreeSet<usize> =
            plan.iter().map(|&(s, _, _)| s).collect();
        for k in 10..13 {
            assert!(planned.contains(&r.route(k)), "key {k} not covered");
        }
        for &(_, lo, hi) in &plan {
            assert_eq!((lo, hi), (10, 13), "sub-ranges are not clamped for hash");
        }
        assert_eq!(r.shards_for_range(5, 5), vec![]);
    }

    #[test]
    fn zero_shards_is_a_typed_error() {
        assert_eq!(RangeRouter::new(0, 100).unwrap_err(), ConfigError::ZeroShards);
        assert_eq!(HashRouter::new(0).unwrap_err(), ConfigError::ZeroShards);
    }

    #[test]
    fn router_kind_parse_round_trip() {
        for kind in [RouterKind::Range, RouterKind::Hash] {
            assert_eq!(kind.to_string().parse::<RouterKind>().unwrap(), kind);
        }
        assert!("consistent".parse::<RouterKind>().is_err());
        assert_eq!(RouterKind::default(), RouterKind::Range);
    }
}
