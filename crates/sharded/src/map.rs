//! The sharded map, its configuration and per-thread handles.

use std::sync::Arc;

use threepath_abtree::{AbTree, AbTreeConfig, AbTreeHandle};
use threepath_bst::{Bst, BstConfig, BstHandle};
use threepath_core::{PathStats, Strategy};
use threepath_htm::HtmConfig;
use threepath_reclaim::ReclaimMode;

/// Which template tree backs each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBackend {
    /// External unbalanced BST (paper Section 6.1).
    Bst,
    /// Relaxed (a,b)-tree (paper Section 6.2).
    AbTree,
}

impl std::fmt::Display for ShardBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardBackend::Bst => "bst",
            ShardBackend::AbTree => "abtree",
        })
    }
}

/// Configuration for a [`ShardedMap`].
///
/// The per-tree knobs (`strategy`, `htm`, `reclaim`, `search_outside_txn`,
/// `snzi`) apply to **every** shard; each shard still instantiates its own
/// runtime and domain from them.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (`>= 1`).
    pub shards: usize,
    /// Tree type backing each shard.
    pub backend: ShardBackend,
    /// Expected key-space upper bound: keys in `[0, key_space)` partition
    /// evenly across shards. Keys `>= key_space` still route by the same
    /// `key / width` rule, clamped to the last shard — so when
    /// `shards <= key_space` (the normal case) every overflow key lands in
    /// the last shard. Ordering across shards is preserved either way.
    pub key_space: u64,
    /// Execution-path strategy for every shard.
    pub strategy: Strategy,
    /// Simulated-HTM parameters (each shard builds its own runtime).
    pub htm: HtmConfig,
    /// Memory-reclamation mode (each shard builds its own domain).
    pub reclaim: ReclaimMode,
    /// Section 8 variant (search outside transactions).
    pub search_outside_txn: bool,
    /// Use a SNZI in place of the fetch-and-increment counter `F`.
    pub snzi: bool,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            backend: ShardBackend::Bst,
            key_space: 1 << 20,
            strategy: Strategy::ThreePath,
            htm: HtmConfig::default(),
            reclaim: ReclaimMode::Epoch,
            search_outside_txn: false,
            snzi: false,
        }
    }
}

/// A single template tree of either backend — one shard of a
/// [`ShardedMap`], also usable standalone as a uniform front over
/// [`Bst`]/[`AbTree`] (the workload harness drives unsharded trials
/// through it). Each instance owns its own HTM runtime and reclamation
/// domain (created by the tree constructor).
#[derive(Clone)]
pub enum ShardTree {
    /// External unbalanced BST.
    Bst(Arc<Bst>),
    /// Relaxed (a,b)-tree.
    AbTree(Arc<AbTree>),
}

impl ShardTree {
    /// Builds one tree from the per-tree fields of `cfg` (`backend`,
    /// `strategy`, `htm`, `reclaim`, `search_outside_txn`, `snzi`);
    /// `shards` and `key_space` are partitioning concerns and ignored.
    pub fn build(cfg: &ShardedConfig) -> ShardTree {
        match cfg.backend {
            ShardBackend::Bst => ShardTree::Bst(Arc::new(Bst::with_config(BstConfig {
                strategy: cfg.strategy,
                htm: cfg.htm.clone(),
                limits: None,
                reclaim: cfg.reclaim,
                search_outside_txn: cfg.search_outside_txn,
                snzi: cfg.snzi,
            }))),
            ShardBackend::AbTree => ShardTree::AbTree(Arc::new(AbTree::with_config(AbTreeConfig {
                strategy: cfg.strategy,
                htm: cfg.htm.clone(),
                limits: None,
                reclaim: cfg.reclaim,
                search_outside_txn: cfg.search_outside_txn,
                snzi: cfg.snzi,
                ..AbTreeConfig::default()
            }))),
        }
    }

    /// Registers the calling thread and returns an operation handle.
    pub fn handle(&self) -> ShardHandle {
        match self {
            ShardTree::Bst(t) => ShardHandle::Bst(t.handle()),
            ShardTree::AbTree(t) => ShardHandle::AbTree(t.handle()),
        }
    }

    /// Sum of all keys (quiescent).
    pub fn key_sum(&self) -> u128 {
        match self {
            ShardTree::Bst(t) => t.key_sum(),
            ShardTree::AbTree(t) => t.key_sum(),
        }
    }

    /// Number of keys (quiescent).
    pub fn len(&self) -> usize {
        match self {
            ShardTree::Bst(t) => t.len(),
            ShardTree::AbTree(t) => t.len(),
        }
    }

    /// Whether the tree is empty (quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All pairs in ascending key order (quiescent).
    pub fn collect(&self) -> Vec<(u64, u64)> {
        match self {
            ShardTree::Bst(t) => t.collect(),
            ShardTree::AbTree(t) => t.collect(),
        }
    }

    /// Structural validation (quiescent). Returns an error description on
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ShardTree::Bst(t) => t.validate().map(|_| ()),
            ShardTree::AbTree(t) => t.validate().map(|_| ()),
        }
    }
}

impl std::fmt::Debug for ShardTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardTree::Bst(t) => t.fmt(f),
            ShardTree::AbTree(t) => t.fmt(f),
        }
    }
}

/// A per-thread handle to one [`ShardTree`].
pub enum ShardHandle {
    /// BST handle.
    Bst(BstHandle),
    /// (a,b)-tree handle.
    AbTree(AbTreeHandle),
}

impl ShardHandle {
    /// Inserts a pair, returning the previous value.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        match self {
            ShardHandle::Bst(h) => h.insert(key, value),
            ShardHandle::AbTree(h) => h.insert(key, value),
        }
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        match self {
            ShardHandle::Bst(h) => h.remove(key),
            ShardHandle::AbTree(h) => h.remove(key),
        }
    }

    /// Looks up a key.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        match self {
            ShardHandle::Bst(h) => h.get(key),
            ShardHandle::AbTree(h) => h.get(key),
        }
    }

    /// Range query over `[lo, hi)` (an atomic snapshot, as on the
    /// underlying tree).
    pub fn range_query(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        match self {
            ShardHandle::Bst(h) => h.range_query(lo, hi),
            ShardHandle::AbTree(h) => h.range_query(lo, hi),
        }
    }

    /// Path statistics accumulated by this handle.
    pub fn stats(&self) -> &PathStats {
        match self {
            ShardHandle::Bst(h) => h.stats(),
            ShardHandle::AbTree(h) => h.stats(),
        }
    }
}

/// A concurrent ordered map partitioned by key range across `N`
/// independent template trees.
///
/// Shard `i` owns keys in `[i·width, (i+1)·width)` where
/// `width = ceil(key_space / shards)`; the last shard additionally owns
/// every key `>= key_space`. Since the partition is contiguous, the map
/// stays globally ordered and quiescent accessors ([`ShardedMap::collect`],
/// [`ShardedMap::key_sum`], [`ShardedMap::len`]) reduce over shards in
/// order.
///
/// Create per-thread handles with [`ShardedMap::handle`]; all operations
/// go through handles, which lazily create and cache one inner tree handle
/// per shard the thread actually touches.
pub struct ShardedMap {
    shards: Vec<ShardTree>,
    width: u64,
    key_space: u64,
    backend: ShardBackend,
    strategy: Strategy,
}

impl ShardedMap {
    /// A map with the default configuration (4 BST shards, 3-path).
    pub fn new() -> Self {
        Self::with_config(ShardedConfig::default())
    }

    /// A map with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards == 0`.
    pub fn with_config(cfg: ShardedConfig) -> Self {
        assert!(cfg.shards >= 1, "ShardedMap needs at least one shard");
        let shards: Vec<ShardTree> = (0..cfg.shards).map(|_| ShardTree::build(&cfg)).collect();
        let width = cfg.key_space.div_ceil(cfg.shards as u64).max(1);
        ShardedMap {
            shards,
            width,
            key_space: cfg.key_space,
            backend: cfg.backend,
            strategy: cfg.strategy,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tree type backing each shard.
    pub fn backend(&self) -> ShardBackend {
        self.backend
    }

    /// The execution strategy every shard runs with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configured key-space upper bound.
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// Which shard owns `key`.
    pub fn shard_of(&self, key: u64) -> usize {
        ((key / self.width) as usize).min(self.shards.len() - 1)
    }

    /// Registers the calling thread and returns an operation handle.
    pub fn handle(self: &Arc<Self>) -> ShardedHandle {
        ShardedHandle {
            cached: (0..self.shards.len()).map(|_| None).collect(),
            map: Arc::clone(self),
        }
    }

    /// Sum of all keys across shards (quiescent: callers must ensure no
    /// concurrent updates, as with the per-tree `key_sum`).
    pub fn key_sum(&self) -> u128 {
        self.shards.iter().map(ShardTree::key_sum).sum()
    }

    /// Number of keys across shards (quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(ShardTree::len).sum()
    }

    /// Whether the map is empty (quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys per shard, in shard order (quiescent) — the load-balance view.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(ShardTree::len).collect()
    }

    /// All pairs in ascending key order (quiescent): per-shard collects
    /// concatenated in shard order.
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.collect());
        }
        out
    }

    /// Validates every shard's structure and that each shard only holds
    /// keys from its own range (quiescent).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.shards.len();
        for (i, s) in self.shards.iter().enumerate() {
            s.validate().map_err(|e| format!("shard {i}: {e}"))?;
            let lo = i as u64 * self.width;
            for (k, _) in s.collect() {
                let in_range = k >= lo && (i == n - 1 || k < lo + self.width);
                if !in_range {
                    return Err(format!("shard {i} holds out-of-range key {k}"));
                }
            }
        }
        Ok(())
    }
}

impl Default for ShardedMap {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ShardedMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .field("backend", &self.backend)
            .field("strategy", &self.strategy)
            .field("key_space", &self.key_space)
            .field("width", &self.width)
            .finish()
    }
}

/// A per-thread handle to a [`ShardedMap`].
///
/// Inner shard handles are created lazily on first touch and cached, so a
/// thread that only ever works in one shard registers with exactly one
/// runtime/domain.
pub struct ShardedHandle {
    map: Arc<ShardedMap>,
    cached: Vec<Option<ShardHandle>>,
}

impl ShardedHandle {
    /// The map this handle operates on.
    pub fn map(&self) -> &Arc<ShardedMap> {
        &self.map
    }

    fn shard_handle(&mut self, shard: usize) -> &mut ShardHandle {
        let slot = &mut self.cached[shard];
        if slot.is_none() {
            *slot = Some(self.map.shards[shard].handle());
        }
        slot.as_mut().unwrap()
    }

    /// Inserts a pair, returning the previous value.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let s = self.map.shard_of(key);
        self.shard_handle(s).insert(key, value)
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let s = self.map.shard_of(key);
        self.shard_handle(s).remove(key)
    }

    /// Looks up a key.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let s = self.map.shard_of(key);
        self.shard_handle(s).get(key)
    }

    /// Whether a key is present.
    pub fn contains(&mut self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Range query over `[lo, hi)`: an ordered merge of per-shard range
    /// queries.
    ///
    /// Each per-shard query is individually atomic (a consistent snapshot
    /// of that shard, exactly as on the underlying tree), and results are
    /// concatenated in shard order so the output is sorted. A query that
    /// spans multiple shards is **not** a single atomic snapshot of the
    /// whole map: updates may land in an already-visited shard while later
    /// shards are still being read.
    pub fn range_query(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        if lo >= hi {
            return Vec::new();
        }
        let first = self.map.shard_of(lo);
        let last = self.map.shard_of(hi - 1);
        let width = self.map.width;
        let shard_count = self.map.shard_count();
        let mut out = Vec::new();
        for s in first..=last {
            // Clamp to the shard's own range; the last shard is unbounded
            // above (it also owns keys >= key_space).
            let slo = lo.max(s as u64 * width);
            let shi = if s == shard_count - 1 {
                hi
            } else {
                hi.min((s as u64 + 1) * width)
            };
            if slo < shi {
                out.extend(self.shard_handle(s).range_query(slo, shi));
            }
        }
        out
    }

    /// Merged path statistics across every shard this thread has touched.
    pub fn stats(&self) -> PathStats {
        let mut merged = PathStats::new();
        for h in self.cached.iter().flatten() {
            merged.merge(h.stats());
        }
        merged
    }
}

impl std::fmt::Debug for ShardedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHandle")
            .field("shards", &self.map.shard_count())
            .field("touched", &self.cached.iter().filter(|c| c.is_some()).count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: usize, backend: ShardBackend) -> Arc<ShardedMap> {
        Arc::new(ShardedMap::with_config(ShardedConfig {
            shards,
            backend,
            key_space: 100,
            ..ShardedConfig::default()
        }))
    }

    #[test]
    fn routing_is_contiguous_and_total() {
        let map = small(4, ShardBackend::Bst);
        assert_eq!(map.shard_of(0), 0);
        assert_eq!(map.shard_of(24), 0);
        assert_eq!(map.shard_of(25), 1);
        assert_eq!(map.shard_of(99), 3);
        // Overflow keys route to the last shard.
        assert_eq!(map.shard_of(100), 3);
        assert_eq!(map.shard_of(u64::MAX), 3);
        // Routing is monotone: shard indices never decrease with the key.
        let mut prev = 0;
        for k in 0..200 {
            let s = map.shard_of(k);
            assert!(s >= prev, "routing must be monotone");
            prev = s;
        }
    }

    #[test]
    fn map_semantics_across_shards() {
        for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
            let map = small(4, backend);
            let mut h = map.handle();
            for k in 0..100u64 {
                assert_eq!(h.insert(k, k * 2), None, "{backend}");
            }
            assert_eq!(h.insert(7, 70), Some(14));
            assert_eq!(h.remove(50), Some(100));
            assert_eq!(h.get(50), None);
            assert!(h.contains(99));
            drop(h);
            assert_eq!(map.len(), 99);
            assert_eq!(map.key_sum(), (0..100u128).sum::<u128>() - 50);
            map.validate().unwrap();
            let all = map.collect();
            assert_eq!(all.len(), 99);
            assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "collect sorted");
        }
    }

    #[test]
    fn cross_shard_range_query_is_sorted_and_complete() {
        let map = small(5, ShardBackend::AbTree);
        let mut h = map.handle();
        for k in (0..100u64).step_by(3) {
            h.insert(k, k);
        }
        let got = h.range_query(10, 80);
        let want: Vec<(u64, u64)> =
            (0..100u64).step_by(3).filter(|k| (10..80).contains(k)).map(|k| (k, k)).collect();
        assert_eq!(got, want);
        assert_eq!(h.range_query(50, 50), vec![]);
        assert_eq!(h.range_query(80, 10), vec![]);
        // A full-space query spans every shard.
        assert_eq!(h.range_query(0, u64::MAX).len(), map.len());
    }

    #[test]
    fn single_shard_degenerates_to_one_tree() {
        let map = small(1, ShardBackend::Bst);
        let mut h = map.handle();
        h.insert(1, 1);
        h.insert(99, 2);
        h.insert(1000, 3); // beyond key_space, still shard 0
        assert_eq!(map.shard_count(), 1);
        assert_eq!(h.range_query(0, 2000), vec![(1, 1), (99, 2), (1000, 3)]);
        drop(h);
        map.validate().unwrap();
    }

    #[test]
    fn handles_cache_lazily_and_stats_merge() {
        let map = small(4, ShardBackend::Bst);
        let mut h = map.handle();
        h.insert(1, 1); // only shard 0 touched
        assert_eq!(h.cached.iter().filter(|c| c.is_some()).count(), 1);
        h.insert(99, 1);
        assert_eq!(h.cached.iter().filter(|c| c.is_some()).count(), 2);
        let stats = h.stats();
        assert!(stats.total_completed() >= 2, "merged stats see both shards");
    }

    #[test]
    fn tiny_key_space_still_partitions() {
        // key_space smaller than the shard count: width clamps to 1.
        let map = Arc::new(ShardedMap::with_config(ShardedConfig {
            shards: 8,
            key_space: 3,
            ..ShardedConfig::default()
        }));
        let mut h = map.handle();
        for k in 0..20u64 {
            h.insert(k, k);
        }
        drop(h);
        assert_eq!(map.len(), 20);
        map.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedMap::with_config(ShardedConfig {
            shards: 0,
            ..ShardedConfig::default()
        });
    }
}
