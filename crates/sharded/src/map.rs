//! The sharded map, its configuration and per-thread handles.

use std::sync::Arc;

use threepath_core::{
    AdmissionProbeConfig, BatchApply, BatchOp, BudgetConfig, PathKind, PathStats, ReadBoundConfig,
    Strategy,
};
use threepath_htm::HtmConfig;
use threepath_persist::{PersistConfig, PersistError, ShardWal};
use threepath_reclaim::ReclaimMode;

use crate::adaptive::{AdaptiveConfig, AdaptiveController, ControllerFactory};
use crate::persist::PersistLayer;
use crate::router::{ConfigError, HashRouter, RangeRouter, Router, RouterKind};
use crate::tree::{ShardBackend, ShardHandle, ShardTree};

/// Configuration for a [`ShardedMap`].
///
/// The per-tree knobs (`strategy`, `htm`, `reclaim`, `search_outside_txn`,
/// `snzi`) apply to **every** shard; each shard still instantiates its own
/// runtime and domain from them. `router` and `adaptive` are the two
/// policy axes: how keys map to shards, and whether each shard may switch
/// strategy at runtime based on its own abort rate.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (`>= 1`).
    pub shards: usize,
    /// Tree type backing each shard.
    pub backend: ShardBackend,
    /// Expected key-space upper bound. The range router partitions
    /// `[0, key_space)` evenly (keys `>= key_space` land in the last
    /// shard); the hash router ignores it.
    pub key_space: u64,
    /// Shard-routing policy (see [`RouterKind`]).
    pub router: RouterKind,
    /// Execution-path strategy for every shard (the *initial* strategy
    /// when `adaptive` is set).
    pub strategy: Strategy,
    /// Per-shard adaptive strategy switching. `Some` builds every shard
    /// with runtime swapping enabled and attaches an
    /// [`AdaptiveController`]; requires `strategy` to be TLE or 3-path.
    pub adaptive: Option<AdaptiveConfig>,
    /// Simulated-HTM parameters (each shard builds its own runtime).
    pub htm: HtmConfig,
    /// Per-shard HTM overrides as `(shard, config)` pairs, replacing
    /// `htm` for those shards — heterogeneous abort environments for
    /// experiments and tests.
    pub htm_overrides: Vec<(usize, HtmConfig)>,
    /// Memory-reclamation mode (each shard builds its own domain).
    pub reclaim: ReclaimMode,
    /// Section 8 variant (search outside transactions).
    pub search_outside_txn: bool,
    /// Use a SNZI in place of the fetch-and-increment counter `F`.
    pub snzi: bool,
    /// Fixed attempt budgets for every shard (wins over `budget`);
    /// `None` uses the paper's per-strategy defaults.
    pub limits: Option<threepath_core::PathLimits>,
    /// Per-thread node pools in every shard's reclamation domain (on by
    /// default — see [`threepath_reclaim::NodePool`]). Off gives the
    /// `Box`-based allocator baseline.
    pub pool: bool,
    /// Per-shard adaptive attempt budgets: each shard's `ExecCtx` scales
    /// its fast/middle attempt counts per epoch from that shard's own
    /// abort mix (see [`threepath_core::BudgetConfig`]). Independent of
    /// [`adaptive`](Self::adaptive) strategy switching; when both are on,
    /// a strategy swap re-anchors the shard's budgets.
    pub budget: Option<BudgetConfig>,
    /// Route every shard's `get`/`contains`/`first`/`last` through the
    /// uninstrumented wait-free read path (zero transactions and locks;
    /// seqlock-validated on the (a,b)-tree backend). On by default; off
    /// routes reads through `run_op` — the read-heavy benchmarks' baseline.
    pub read_path: bool,
    /// Route every shard's `range_query` through the uninstrumented
    /// optimistic scan path (epoch-pinned multi-leaf validation with a
    /// partial-rescan escalation tier; zero transactions on the calm
    /// path). Cross-shard range queries then feed per-shard optimistic
    /// scans into the usual concat/sort-merge plan, so they are
    /// transaction-free end-to-end when every shard's scan succeeds
    /// optimistically. On by default; off routes scans through `run_op`
    /// — the scan benchmarks' baseline.
    pub scan_path: bool,
    /// Arm every shard's wait-free snapshot tier: a scan that exhausts
    /// the optimistic version-ladder attempts publishes a snapshot epoch
    /// and reads a frozen pre-image overlay deposited by racing updaters
    /// instead of escalating into the transactional machinery (see
    /// [`threepath_core::SnapshotCtl`]). On by default; sound only under
    /// strategies whose software paths are bracketed by the fallback
    /// indicator or TLE lock — elsewhere the tier silently declines and
    /// the scan escalates as before.
    pub snapshot_scans: bool,
    /// HTM admission control on every shard's fallback path: at most
    /// this many threads may attempt hardware transactions while the
    /// shard's fallback is active; the overflow parks on a ready lane
    /// and takes the fallback directly (see
    /// [`threepath_core::AdmissionGate`]). `None` (the default) admits
    /// everyone — the uncontrolled baseline.
    pub admission: Option<u32>,
    /// Probe the read-escalation bound per shard instead of using the
    /// fixed [`threepath_core::DEFAULT_READ_ATTEMPTS`]: contended reads
    /// feed a [`ReadBoundConfig`] ladder of candidate bounds and each
    /// shard runs the bound that measures fastest. Uncontended reads
    /// never touch the machinery.
    pub read_probe: Option<ReadBoundConfig>,
    /// Custom per-shard strategy controllers for the adaptive map (fixed
    /// oracles in benchmarks, recording controllers in tests). `None`
    /// uses the default probing controller; ignored unless
    /// [`adaptive`](Self::adaptive) is set.
    pub controller: Option<ControllerFactory>,
    /// Probe every shard's admission window cap instead of fixing it:
    /// gated fast-path encounters feed a ladder of candidate caps and
    /// each shard's gate runs the cap that measures fastest (see
    /// [`AdmissionProbeConfig`]). Takes precedence over a fixed
    /// [`admission`](Self::admission) cap.
    pub admission_probe: Option<AdmissionProbeConfig>,
    /// Enable per-shard batch entry points
    /// ([`ShardedHandle::shard_batch`]): coalesced same-shard plans
    /// commit in a single fast-path transaction or one serialized
    /// section, with a flat-combining hook for queue-draining servers.
    /// Requires a TLE or 3-path strategy.
    pub batched: bool,
    /// Per-shard durability: `Some` gives every shard an append-only,
    /// checksummed write-ahead log (plus periodic snapshots) in
    /// `persist.dir`, written **before** any update's reply is
    /// published, so [`ShardedMap::recover`] can rebuild the map after a
    /// crash. `None` (the default) is the volatile map — the update
    /// path's only extra cost is this one armed check. Building with
    /// `Some` initializes a fresh directory and refuses to clobber an
    /// existing one; use [`ShardedMap::recover`] to resume. Requires the
    /// built-in routers (the manifest must pin the partition).
    pub persist: Option<PersistConfig>,
}

impl ShardedConfig {
    /// The HTM configuration shard `shard` builds its runtime from (the
    /// last matching override, or the shared `htm`).
    pub fn htm_for(&self, shard: usize) -> HtmConfig {
        self.htm_overrides
            .iter()
            .rev()
            .find(|(s, _)| *s == shard)
            .map(|(_, c)| c.clone())
            .unwrap_or_else(|| self.htm.clone())
    }

    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        crate::persist::validate_persist(self)?;
        if let Some(a) = &self.adaptive {
            a.validate()?;
            if !threepath_core::ADAPTIVE_STRATEGIES.contains(&self.strategy) {
                return Err(ConfigError::AdaptiveStrategy(self.strategy));
            }
        }
        if self.admission == Some(0) {
            return Err(ConfigError::ZeroAdmissionWindow);
        }
        if let Some(p) = &self.admission_probe {
            p.validate().map_err(ConfigError::InvalidAdmissionProbe)?;
        }
        if self.batched && !threepath_core::ADAPTIVE_STRATEGIES.contains(&self.strategy) {
            return Err(ConfigError::BatchedStrategy(self.strategy));
        }
        if let Some(r) = &self.read_probe {
            r.validate().map_err(ConfigError::InvalidReadProbe)?;
        }
        if let Some(b) = &self.budget {
            // Same typed-error contract as the other knobs: surface
            // exactly the tunings AdaptiveBudgets::new would panic on.
            if b.validate().is_err() {
                return Err(ConfigError::InvalidBudget);
            }
        }
        if let Some(&(shard, _)) = self
            .htm_overrides
            .iter()
            .find(|(s, _)| *s >= self.shards)
        {
            return Err(ConfigError::OverrideOutOfRange {
                shard,
                shards: self.shards,
            });
        }
        Ok(())
    }
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            backend: ShardBackend::Bst,
            key_space: 1 << 20,
            router: RouterKind::Range,
            strategy: Strategy::ThreePath,
            adaptive: None,
            htm: HtmConfig::default(),
            htm_overrides: Vec::new(),
            reclaim: ReclaimMode::Epoch,
            search_outside_txn: false,
            snzi: false,
            limits: None,
            pool: true,
            budget: None,
            read_path: true,
            scan_path: true,
            snapshot_scans: true,
            admission: None,
            read_probe: None,
            controller: None,
            admission_probe: None,
            batched: false,
            persist: None,
        }
    }
}

/// A concurrent ordered map partitioned across `N` independent template
/// trees by a pluggable [`Router`] policy.
///
/// With the default [`RangeRouter`] the partition is contiguous: the map
/// stays globally ordered and cross-shard range queries are in-order
/// concatenations of per-shard queries. With a [`HashRouter`] keys stripe
/// across shards for load balance, and range queries sort-merge the
/// per-shard results instead (see [`ShardedHandle::range_query`]).
///
/// With [`ShardedConfig::adaptive`] set, each shard additionally observes
/// its own abort rate and switches between TLE and 3-path independently
/// (see [`AdaptiveController`]).
///
/// Create per-thread handles with [`ShardedMap::handle`]; all operations
/// go through handles, which lazily create and cache one inner tree
/// handle per shard the thread actually touches.
pub struct ShardedMap {
    shards: Vec<ShardTree>,
    router: Arc<dyn Router>,
    adaptive: Option<AdaptiveController>,
    backend: ShardBackend,
    strategy: Strategy,
    key_space: u64,
    persist: Option<PersistLayer>,
}

impl ShardedMap {
    /// A map with the default configuration (4 range-routed BST shards,
    /// fixed 3-path).
    pub fn new() -> Self {
        Self::with_config(ShardedConfig::default()).expect("default config is valid")
    }

    /// A map with the given configuration, routing through the built-in
    /// policy `cfg.router` selects. With [`ShardedConfig::persist`] set
    /// this initializes a **fresh** persistence directory (manifest plus
    /// one empty log per shard) and fails with a typed
    /// [`PersistError::WouldClobber`] if the directory is already
    /// initialized — resume an existing directory with
    /// [`ShardedMap::recover`] instead.
    pub fn with_config(cfg: ShardedConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let router = Self::router_of(&cfg)?;
        let persist = match &cfg.persist {
            Some(_) => Some(PersistLayer::create(&cfg)?),
            None => None,
        };
        Self::build(cfg, router, persist)
    }

    /// A map routed by a custom [`Router`] policy. The router must
    /// partition exactly `cfg.shards` shards; `cfg.router` is ignored.
    /// Persistence is not supported here: the manifest can only pin the
    /// built-in routing policies, and recovering under a router it
    /// cannot validate would silently mis-partition the replayed keys.
    pub fn with_router(cfg: ShardedConfig, router: Arc<dyn Router>) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if cfg.persist.is_some() {
            return Err(ConfigError::Persist(PersistError::InvalidConfig(
                "custom routers cannot be persisted: the manifest only pins built-in routing",
            )));
        }
        if router.shard_count() != cfg.shards {
            return Err(ConfigError::RouterShardMismatch {
                router: router.shard_count(),
                shards: cfg.shards,
            });
        }
        Self::build(cfg, router, None)
    }

    fn router_of(cfg: &ShardedConfig) -> Result<Arc<dyn Router>, ConfigError> {
        Ok(match cfg.router {
            RouterKind::Range => Arc::new(RangeRouter::new(cfg.shards, cfg.key_space)?),
            RouterKind::Hash => Arc::new(HashRouter::new(cfg.shards)?),
        })
    }

    /// Assembles a recovered map around already-recovered log writers
    /// (no fresh directory initialization).
    pub(crate) fn build_recovered(
        cfg: ShardedConfig,
        layer: PersistLayer,
    ) -> Result<Arc<Self>, ConfigError> {
        let router = Self::router_of(&cfg)?;
        Ok(Arc::new(Self::build(cfg, router, Some(layer))?))
    }

    fn build(
        cfg: ShardedConfig,
        router: Arc<dyn Router>,
        persist: Option<PersistLayer>,
    ) -> Result<Self, ConfigError> {
        let shards: Vec<ShardTree> = (0..cfg.shards)
            .map(|s| ShardTree::build_shard(&cfg, s))
            .collect();
        let adaptive = cfg
            .adaptive
            .as_ref()
            .map(|a| {
                AdaptiveController::with_factory(
                    a.clone(),
                    cfg.shards,
                    cfg.strategy,
                    cfg.controller.as_ref(),
                )
            })
            .transpose()?;
        Ok(ShardedMap {
            shards,
            router,
            adaptive,
            backend: cfg.backend,
            strategy: cfg.strategy,
            key_space: cfg.key_space,
            persist,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The tree type backing each shard.
    pub fn backend(&self) -> ShardBackend {
        self.backend
    }

    /// The configured (initial) execution strategy. Individual shards of
    /// an adaptive map may since have switched — see
    /// [`ShardedMap::shard_strategies`].
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Every shard's *current* strategy, in shard order.
    pub fn shard_strategies(&self) -> Vec<Strategy> {
        self.shards.iter().map(ShardTree::strategy).collect()
    }

    /// The adaptive controller, when the map was configured with one.
    pub fn adaptive(&self) -> Option<&AdaptiveController> {
        self.adaptive.as_ref()
    }

    /// The routing policy.
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.router
    }

    /// The configured key-space upper bound.
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// Every shard's attempt budgets currently in effect, in shard order
    /// (diagnostic for adaptive-budget experiments).
    pub fn shard_limits(&self) -> Vec<threepath_core::PathLimits> {
        self.shards.iter().map(ShardTree::limits).collect()
    }

    /// Node-pool counters summed across every shard's domain (contexts
    /// fold on drop; read after handles are gone for a complete picture).
    pub fn pool_stats(&self) -> threepath_reclaim::PoolStats {
        let mut total = threepath_reclaim::PoolStats::default();
        for s in &self.shards {
            total.merge(&s.pool_stats());
        }
        total
    }

    /// Which shard owns `key` (delegates to the router).
    pub fn shard_of(&self, key: u64) -> usize {
        self.router.route(key)
    }

    /// Whether the shards were built with the batch entry point enabled
    /// (see [`ShardedConfig::batched`]).
    pub fn is_batched(&self) -> bool {
        self.shards.iter().all(ShardTree::is_batched)
    }

    /// Registers the calling thread and returns an operation handle.
    pub fn handle(self: &Arc<Self>) -> ShardedHandle {
        ShardedHandle {
            cached: (0..self.shards.len()).map(|_| None).collect(),
            adapt: vec![AdaptSample::default(); self.shards.len()],
            local: PathStats::new(),
            map: Arc::clone(self),
        }
    }

    /// Sum of all keys across shards (quiescent: callers must ensure no
    /// concurrent updates, as with the per-tree `key_sum`).
    pub fn key_sum(&self) -> u128 {
        self.shards.iter().map(ShardTree::key_sum).sum()
    }

    /// Number of keys across shards (quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(ShardTree::len).sum()
    }

    /// Whether the map is empty (quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keys per shard, in shard order (quiescent) — the load-balance view.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(ShardTree::len).collect()
    }

    /// All pairs in ascending key order (quiescent): per-shard collects
    /// concatenated in shard order, sorted once when the router does not
    /// preserve global order.
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.collect());
        }
        if !self.router.preserves_order() {
            out.sort_unstable_by_key(|&(k, _)| k);
        }
        out
    }

    /// Validates every shard's structure and that each shard only holds
    /// keys the router assigns to it (quiescent).
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.shards.iter().enumerate() {
            s.validate().map_err(|e| format!("shard {i}: {e}"))?;
            for (k, _) in s.collect() {
                let owner = self.router.route(k);
                if owner != i {
                    return Err(format!(
                        "shard {i} holds key {k}, which the router assigns to shard {owner}"
                    ));
                }
            }
        }
        Ok(())
    }

    pub(crate) fn shard_tree(&self, shard: usize) -> &ShardTree {
        &self.shards[shard]
    }

    pub(crate) fn persist_layer(&self) -> Option<&PersistLayer> {
        self.persist.as_ref()
    }
}

impl Default for ShardedMap {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ShardedMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .field("backend", &self.backend)
            .field("router", &self.router)
            .field("strategy", &self.strategy)
            .field("adaptive", &self.adaptive.is_some())
            .field("key_space", &self.key_space)
            .field("persist", &self.persist.is_some())
            .finish()
    }
}

/// Per-shard adaptive sampling state of one handle: operations since the
/// last push, and the stats totals at that push (deltas are what the
/// controller accumulates).
#[derive(Debug, Clone, Copy, Default)]
struct AdaptSample {
    ops: u64,
    last_completed: u64,
    last_conflicts: u64,
    last_aborts: u64,
}

/// A per-thread handle to a [`ShardedMap`].
///
/// Inner shard handles are created lazily on first touch and cached, so a
/// thread that only ever works in one shard registers with exactly one
/// runtime/domain.
pub struct ShardedHandle {
    map: Arc<ShardedMap>,
    cached: Vec<Option<ShardHandle>>,
    adapt: Vec<AdaptSample>,
    /// Handle-local stats lanes the inner tree handles cannot see (the
    /// WAL lane); merged into [`ShardedHandle::stats`].
    local: PathStats,
}

impl ShardedHandle {
    /// The map this handle operates on.
    pub fn map(&self) -> &Arc<ShardedMap> {
        &self.map
    }

    fn shard_handle(&mut self, shard: usize) -> &mut ShardHandle {
        let slot = &mut self.cached[shard];
        if slot.is_none() {
            *slot = Some(self.map.shards[shard].handle());
        }
        slot.as_mut()
            .expect("shard handle slot was just populated above")
    }

    /// Adaptive bookkeeping after an operation on `shard`: every
    /// `sample_every` local operations, push this handle's windowed
    /// stats delta into the shard's controller.
    fn note_op(&mut self, shard: usize) {
        let Some(ctl) = self.map.adaptive.as_ref() else {
            return;
        };
        let sample = &mut self.adapt[shard];
        sample.ops += 1;
        if sample.ops % ctl.config().sample_every != 0 {
            return;
        }
        let Some(h) = self.cached[shard].as_ref() else {
            return;
        };
        let stats = h.stats();
        let completed = stats.total_completed();
        let conflicts = stats.total_conflict_aborts();
        let aborts = stats.total_aborts();
        let d_ops = completed - sample.last_completed;
        let d_conflicts = conflicts - sample.last_conflicts;
        let d_other = (aborts - sample.last_aborts) - d_conflicts;
        sample.last_completed = completed;
        sample.last_conflicts = conflicts;
        sample.last_aborts = aborts;
        ctl.record(shard, d_ops, d_conflicts, d_other, self.map.shard_tree(shard));
    }

    /// Inserts a pair, returning the previous value. On a persistent
    /// map the update is logged to its shard's write-ahead log before
    /// this method returns.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let s = self.map.shard_of(key);
        let r = if self.map.persist.is_some() {
            self.persistent_point_op(s, BatchOp::Insert(key, value))
        } else {
            self.shard_handle(s).insert(key, value)
        };
        self.note_op(s);
        r
    }

    /// Removes a key, returning its value. Logged write-ahead on a
    /// persistent map, like [`ShardedHandle::insert`].
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let s = self.map.shard_of(key);
        let r = if self.map.persist.is_some() {
            self.persistent_point_op(s, BatchOp::Remove(key))
        } else {
            self.shard_handle(s).remove(key)
        };
        self.note_op(s);
        r
    }

    /// The persistent update discipline for point operations: hold the
    /// shard's log lock across *append + execute* so log order is commit
    /// order, appending **before** executing so no acknowledged update
    /// can be missing from the log. Runtime log IO failure is fail-stop
    /// by design — continuing would acknowledge updates the log never
    /// saw.
    fn persistent_point_op(&mut self, s: usize, op: BatchOp) -> Option<u64> {
        let map = Arc::clone(&self.map);
        let layer = map
            .persist_layer()
            .expect("caller checked the map is persistent");
        let mut wal = layer.lock(s);
        let before = wal.stats();
        wal.append(std::slice::from_ref(&op))
            .expect("WAL append failed (fail-stop: the log is the map)");
        let r = match op {
            BatchOp::Insert(k, v) => self.shard_handle(s).insert(k, v),
            BatchOp::Remove(k) => self.shard_handle(s).remove(k),
            BatchOp::Get(_) => unreachable!("reads are never logged"),
        };
        self.persist_finish(&map, s, &mut wal, before);
        r
    }

    /// After a logged update, record the handle-local WAL lane and take
    /// a snapshot if the cadence is due. Runs under the held log lock:
    /// every other persistent updater of this shard is excluded, so the
    /// shard is update-quiescent and `collect` sees a consistent image
    /// (concurrent readers are harmless).
    fn persist_finish(
        &mut self,
        map: &Arc<ShardedMap>,
        s: usize,
        wal: &mut ShardWal,
        before: threepath_persist::WalStats,
    ) {
        let after = wal.stats();
        if after.records > before.records {
            self.local
                .record_wal_appends(after.records - before.records, after.bytes - before.bytes);
        }
        if wal.snapshot_due() {
            let pairs = map.shard_tree(s).collect();
            wal.install_snapshot(&pairs)
                .expect("WAL snapshot failed (fail-stop: the log is the map)");
            self.local.record_wal_snapshot();
        }
    }

    /// Looks up a key: routes straight to the owning shard's read path —
    /// on the default configuration an uninstrumented wait-free traversal
    /// of that shard's tree (zero transactions, no locks), recorded on
    /// the merged [`PathStats`]' read lane.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let s = self.map.shard_of(key);
        let r = self.shard_handle(s).get(key);
        self.note_op(s);
        r
    }

    /// Whether a key is present.
    pub fn contains(&mut self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Range query over `[lo, hi)` across shards.
    ///
    /// The router plans which shards to visit. Each per-shard query is
    /// individually atomic (a consistent snapshot of that shard, exactly
    /// as on the underlying tree). Under an order-preserving router the
    /// per-shard results concatenate in shard order; otherwise (hash
    /// routing) every visited shard returns its scattered members of
    /// `[lo, hi)` and the sorted runs are **sort-merged** into one
    /// ascending sequence. Either way a query that spans multiple shards
    /// is *not* a single atomic snapshot of the whole map: updates may
    /// land in an already-visited shard while later shards are still
    /// being read.
    pub fn range_query(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let plan = self.map.router.shards_for_range(lo, hi);
        if self.map.router.preserves_order() {
            let mut out = Vec::new();
            for (s, slo, shi) in plan {
                out.extend(self.shard_handle(s).range_query(slo, shi));
                self.note_op(s);
            }
            return out;
        }
        let mut runs = Vec::with_capacity(plan.len());
        for (s, slo, shi) in plan {
            let run = self.shard_handle(s).range_query(slo, shi);
            self.note_op(s);
            if !run.is_empty() {
                runs.push(run);
            }
        }
        merge_sorted_runs(runs)
    }

    /// Applies a coalesced plan of **same-shard** operations in
    /// submission order on shard `shard`, committing the whole plan in a
    /// single fast-path transaction or one serialized section (see the
    /// backend trees' `run_batch`). Requires a map built with
    /// [`ShardedConfig::batched`].
    ///
    /// # Panics
    ///
    /// Panics if any key in the plan routes to a different shard, or if
    /// the map is not batched.
    pub fn shard_batch(&mut self, shard: usize, ops: &[BatchOp]) -> (Vec<Option<u64>>, PathKind) {
        self.check_shard_plan(shard, ops);
        let r = if self.map.persist.is_some() {
            let map = Arc::clone(&self.map);
            let layer = map
                .persist_layer()
                .expect("caller checked the map is persistent");
            let mut wal = layer.lock(shard);
            let before = wal.stats();
            // One batch = one record: the whole plan becomes durable (or
            // is discarded at recovery) atomically under its checksum.
            wal.append(ops)
                .expect("WAL append failed (fail-stop: the log is the map)");
            let r = self.shard_handle(shard).run_batch(ops);
            self.persist_finish(&map, shard, &mut wal, before);
            r
        } else {
            self.shard_handle(shard).run_batch(ops)
        };
        self.note_op(shard);
        r
    }

    /// [`Self::shard_batch`] with a flat-combining hook: when the batch
    /// escalates to the serialized section, `combine` runs while this
    /// thread holds the shard's fallback lock, receiving a
    /// [`BatchApply`] that applies further same-shard plans in the same
    /// section. The server layer uses this to drain a shard's submission
    /// queue before releasing the lock.
    pub fn shard_batch_with(
        &mut self,
        shard: usize,
        ops: &[BatchOp],
        combine: impl FnOnce(&mut dyn BatchApply),
    ) -> (Vec<Option<u64>>, PathKind) {
        self.check_shard_plan(shard, ops);
        let r = if self.map.persist.is_some() {
            let map = Arc::clone(&self.map);
            let layer = map
                .persist_layer()
                .expect("caller checked the map is persistent");
            let mut wal = layer.lock(shard);
            let before = wal.stats();
            wal.append(ops)
                .expect("WAL append failed (fail-stop: the log is the map)");
            // Combined plans are applied (and their replies published)
            // inside the serialized section, so they log through a
            // write-ahead wrapper of the combiner's BatchApply.
            let wal_ref = &mut *wal;
            let r = self.shard_handle(shard).run_batch_with(ops, move |apply| {
                let mut logged = crate::persist::LoggedApply {
                    wal: wal_ref,
                    inner: apply,
                };
                combine(&mut logged);
            });
            self.persist_finish(&map, shard, &mut wal, before);
            r
        } else {
            self.shard_handle(shard).run_batch_with(ops, combine)
        };
        self.note_op(shard);
        r
    }

    fn check_shard_plan(&self, shard: usize, ops: &[BatchOp]) {
        for op in ops {
            let owner = self.map.shard_of(op.key());
            assert_eq!(
                owner,
                shard,
                "batch op {op} routes to shard {owner}, not {shard}"
            );
        }
    }

    /// One shard's members of `[lo, hi)` in ascending order — the
    /// per-shard sub-scan of a cross-shard range query, exposed so a
    /// server can pipeline sub-scans through per-shard queues and
    /// sort-merge the runs itself (see
    /// [`crate::merge_sorted_runs`]). The sub-range is clipped by the
    /// router's plan; a shard outside the plan returns nothing.
    pub fn shard_range_query(&mut self, shard: usize, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let plan = self.map.router.shards_for_range(lo, hi);
        let Some(&(s, slo, shi)) = plan.iter().find(|(s, _, _)| *s == shard) else {
            return Vec::new();
        };
        let r = self.shard_handle(s).range_query(slo, shi);
        self.note_op(s);
        r
    }

    /// Merged path statistics across every shard this thread has
    /// touched, including this handle's WAL lane on a persistent map.
    pub fn stats(&self) -> PathStats {
        let mut merged = PathStats::new();
        for h in self.cached.iter().flatten() {
            merged.merge(h.stats());
        }
        merged.merge(&self.local);
        merged
    }
}

impl std::fmt::Debug for ShardedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHandle")
            .field("shards", &self.map.shard_count())
            .field("touched", &self.cached.iter().filter(|c| c.is_some()).count())
            .finish()
    }
}

/// K-way merge of individually sorted, mutually disjoint runs (each key
/// lives in exactly one shard, so ties cannot occur). Used by
/// [`ShardedHandle::range_query`] under non-order-preserving routers, and
/// public for servers that pipeline per-shard sub-scans
/// ([`ShardedHandle::shard_range_query`]) and merge the runs themselves.
pub fn merge_sorted_runs(runs: Vec<Vec<(u64, u64)>>) -> Vec<(u64, u64)> {
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.into_iter().next().expect("len checked == 1"),
        _ => {}
    }
    let total = runs.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let mut best: Option<usize> = None;
        for r in 0..runs.len() {
            if heads[r] < runs[r].len()
                && best.is_none_or(|b| runs[r][heads[r]].0 < runs[b][heads[b]].0)
            {
                best = Some(r);
            }
        }
        let b = best.expect("a non-exhausted run exists while out.len() < total");
        out.push(runs[b][heads[b]]);
        heads[b] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: usize, backend: ShardBackend) -> Arc<ShardedMap> {
        Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards,
                backend,
                key_space: 100,
                ..ShardedConfig::default()
            })
            .unwrap(),
        )
    }

    fn small_hash(shards: usize, backend: ShardBackend) -> Arc<ShardedMap> {
        Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards,
                backend,
                key_space: 100,
                router: RouterKind::Hash,
                ..ShardedConfig::default()
            })
            .unwrap(),
        )
    }

    #[test]
    fn routing_is_contiguous_and_total() {
        let map = small(4, ShardBackend::Bst);
        assert_eq!(map.shard_of(0), 0);
        assert_eq!(map.shard_of(24), 0);
        assert_eq!(map.shard_of(25), 1);
        assert_eq!(map.shard_of(99), 3);
        // Overflow keys route to the last shard.
        assert_eq!(map.shard_of(100), 3);
        assert_eq!(map.shard_of(u64::MAX), 3);
        // Routing is monotone: shard indices never decrease with the key.
        let mut prev = 0;
        for k in 0..200 {
            let s = map.shard_of(k);
            assert!(s >= prev, "routing must be monotone");
            prev = s;
        }
    }

    #[test]
    fn map_semantics_across_shards() {
        for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
            for map in [small(4, backend), small_hash(4, backend)] {
                let mut h = map.handle();
                for k in 0..100u64 {
                    assert_eq!(h.insert(k, k * 2), None, "{backend}");
                }
                assert_eq!(h.insert(7, 70), Some(14));
                assert_eq!(h.remove(50), Some(100));
                assert_eq!(h.get(50), None);
                assert!(h.contains(99));
                drop(h);
                assert_eq!(map.len(), 99);
                assert_eq!(map.key_sum(), (0..100u128).sum::<u128>() - 50);
                map.validate().unwrap();
                let all = map.collect();
                assert_eq!(all.len(), 99);
                assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "collect sorted");
            }
        }
    }

    #[test]
    fn cross_shard_range_query_is_sorted_and_complete() {
        for map in [small(5, ShardBackend::AbTree), small_hash(5, ShardBackend::AbTree)] {
            let mut h = map.handle();
            for k in (0..100u64).step_by(3) {
                h.insert(k, k);
            }
            let got = h.range_query(10, 80);
            let want: Vec<(u64, u64)> =
                (0..100u64).step_by(3).filter(|k| (10..80).contains(k)).map(|k| (k, k)).collect();
            assert_eq!(got, want);
            assert_eq!(h.range_query(50, 50), vec![]);
            assert_eq!(h.range_query(80, 10), vec![]);
            // A full-space query spans every shard.
            assert_eq!(h.range_query(0, u64::MAX).len(), map.len());
        }
    }

    #[test]
    fn hash_routing_balances_clustered_keys() {
        // 100 consecutive keys: range routing piles them into few shards'
        // worth of clusters by construction; hash routing spreads them.
        let map = small_hash(4, ShardBackend::Bst);
        let mut h = map.handle();
        for k in 0..100u64 {
            h.insert(k, k);
        }
        drop(h);
        let sizes = map.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        for (s, &n) in sizes.iter().enumerate() {
            assert!((10..45).contains(&n), "shard {s} holds {n} of 100");
        }
        map.validate().unwrap();
    }

    #[test]
    fn single_shard_degenerates_to_one_tree() {
        let map = small(1, ShardBackend::Bst);
        let mut h = map.handle();
        h.insert(1, 1);
        h.insert(99, 2);
        h.insert(1000, 3); // beyond key_space, still shard 0
        assert_eq!(map.shard_count(), 1);
        assert_eq!(h.range_query(0, 2000), vec![(1, 1), (99, 2), (1000, 3)]);
        drop(h);
        map.validate().unwrap();
    }

    #[test]
    fn handles_cache_lazily_and_stats_merge() {
        let map = small(4, ShardBackend::Bst);
        let mut h = map.handle();
        h.insert(1, 1); // only shard 0 touched
        assert_eq!(h.cached.iter().filter(|c| c.is_some()).count(), 1);
        h.insert(99, 1);
        assert_eq!(h.cached.iter().filter(|c| c.is_some()).count(), 2);
        let stats = h.stats();
        assert!(stats.total_completed() >= 2, "merged stats see both shards");
    }

    #[test]
    fn tiny_key_space_still_partitions() {
        // key_space smaller than the shard count: width clamps to 1.
        let map = Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards: 8,
                key_space: 3,
                ..ShardedConfig::default()
            })
            .unwrap(),
        );
        let mut h = map.handle();
        for k in 0..20u64 {
            h.insert(k, k);
        }
        drop(h);
        assert_eq!(map.len(), 20);
        map.validate().unwrap();
    }

    #[test]
    fn zero_shards_is_a_typed_error_not_a_panic() {
        for router in [RouterKind::Range, RouterKind::Hash] {
            let err = ShardedMap::with_config(ShardedConfig {
                shards: 0,
                router,
                ..ShardedConfig::default()
            })
            .unwrap_err();
            assert_eq!(err, ConfigError::ZeroShards, "{router}");
        }
    }

    #[test]
    fn degenerate_budget_tuning_is_a_typed_error() {
        for bad in [
            BudgetConfig {
                epoch_ops: 0,
                ..BudgetConfig::default()
            },
            // A one-op window carries no comparative signal.
            BudgetConfig {
                epoch_ops: 1,
                ..BudgetConfig::default()
            },
            BudgetConfig {
                min_attempts: 0,
                ..BudgetConfig::default()
            },
            BudgetConfig {
                max_scale: 0,
                ..BudgetConfig::default()
            },
            // A probe pass that never measures anything.
            BudgetConfig {
                probe: threepath_core::ProbeConfig {
                    probe_windows: 0,
                    ..threepath_core::ProbeConfig::default()
                },
                ..BudgetConfig::default()
            },
            // NaN hold-back margins must not slip through.
            BudgetConfig {
                probe: threepath_core::ProbeConfig {
                    min_gain: f64::NAN,
                    ..threepath_core::ProbeConfig::default()
                },
                ..BudgetConfig::default()
            },
        ] {
            let err = ShardedMap::with_config(ShardedConfig {
                budget: Some(bad.clone()),
                ..ShardedConfig::default()
            })
            .unwrap_err();
            assert_eq!(err, ConfigError::InvalidBudget, "{bad:?}");
        }
        // A sane budget passes.
        ShardedMap::with_config(ShardedConfig {
            budget: Some(BudgetConfig::default()),
            ..ShardedConfig::default()
        })
        .unwrap();
    }

    #[test]
    fn degenerate_admission_and_read_probe_are_typed_errors() {
        let err = ShardedMap::with_config(ShardedConfig {
            admission: Some(0),
            ..ShardedConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroAdmissionWindow);
        let err = ShardedMap::with_config(ShardedConfig {
            read_probe: Some(threepath_core::ReadBoundConfig {
                ladder: vec![],
                ..threepath_core::ReadBoundConfig::default()
            }),
            ..ShardedConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidReadProbe(_)));
        // Sane values pass and the map still works.
        let map = Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards: 2,
                key_space: 100,
                admission: Some(2),
                read_probe: Some(threepath_core::ReadBoundConfig::default()),
                ..ShardedConfig::default()
            })
            .unwrap(),
        );
        let mut h = map.handle();
        for k in 0..50u64 {
            h.insert(k, k);
        }
        assert_eq!(h.get(25), Some(25));
        drop(h);
        map.validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        // Adaptive with a non-swappable starting strategy.
        let err = ShardedMap::with_config(ShardedConfig {
            strategy: Strategy::NonHtm,
            adaptive: Some(AdaptiveConfig::default()),
            ..ShardedConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, ConfigError::AdaptiveStrategy(Strategy::NonHtm));
        // HTM override for a shard that does not exist.
        let err = ShardedMap::with_config(ShardedConfig {
            shards: 2,
            htm_overrides: vec![(5, HtmConfig::default())],
            ..ShardedConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, ConfigError::OverrideOutOfRange { shard: 5, shards: 2 });
        // Custom router disagreeing with the shard count.
        let err = ShardedMap::with_router(
            ShardedConfig {
                shards: 4,
                ..ShardedConfig::default()
            },
            Arc::new(HashRouter::new(2).unwrap()),
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::RouterShardMismatch { router: 2, shards: 4 });
    }

    #[test]
    fn custom_router_drives_the_map() {
        let map = Arc::new(
            ShardedMap::with_router(
                ShardedConfig {
                    shards: 3,
                    key_space: 100,
                    ..ShardedConfig::default()
                },
                Arc::new(HashRouter::new(3).unwrap()),
            )
            .unwrap(),
        );
        let mut h = map.handle();
        for k in 0..50u64 {
            h.insert(k, k);
        }
        assert_eq!(h.range_query(0, 50).len(), 50);
        drop(h);
        assert!(!map.router().preserves_order());
        map.validate().unwrap();
    }

    #[test]
    fn adaptive_map_probes_every_shard_independently() {
        // Shard 1 aborts nearly every transaction (spurious injection);
        // the other shards are clean. Drive uniform traffic through all
        // shards: every shard's controller turns its own windows and
        // probes both strategies, the decision state stays coherent, and
        // the per-shard load picture shows the storm where it happened.
        // (Which strategy wins each shard is an empirical question the
        // probing answers per machine — asserted on the fixed workloads
        // of tests/controller_convergence.rs, not here.)
        let hot = HtmConfig::default().with_spurious(0.97);
        let map = Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards: 4,
                key_space: 400,
                strategy: Strategy::ThreePath,
                adaptive: Some(AdaptiveConfig {
                    sample_every: 16,
                    epoch_ops: 64,
                    ..AdaptiveConfig::default()
                }),
                htm_overrides: vec![(1, hot)],
                ..ShardedConfig::default()
            })
            .unwrap(),
        );
        assert_eq!(map.shard_strategies(), vec![Strategy::ThreePath; 4]);
        let mut h = map.handle();
        for i in 0..8000u64 {
            let k = (i * 7) % 400;
            if i % 2 == 0 {
                h.insert(k, i);
            } else {
                h.remove(k);
            }
        }
        drop(h);
        let ctl = map.adaptive().unwrap();
        for s in 0..4 {
            assert!(ctl.epochs(s) > 0, "shard {s} turned decision windows");
            // The shard runs exactly what its controller chose, and both
            // live in the adaptive strategy set.
            assert_eq!(ctl.strategy_of(s), map.shard_strategies()[s]);
            assert!(threepath_core::ADAPTIVE_STRATEGIES
                .contains(&ctl.settled_strategy_of(s)));
            // Probe passes measured the other strategy at least once.
            assert!(
                ctl.controller_of(s).switches() > 0,
                "shard {s} never probed the alternative"
            );
        }
        // The observed per-shard load picture localizes the storm.
        let (_, hot_aborts) = ctl.observed(1);
        let (cold_ops, cold_aborts) = ctl.observed(0);
        assert!(hot_aborts > cold_aborts * 5, "aborts concentrate on shard 1");
        assert!(cold_ops > 0);
        map.validate().unwrap();
    }

    #[test]
    fn shard_batches_apply_in_order_across_backends() {
        for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
            let map = Arc::new(
                ShardedMap::with_config(ShardedConfig {
                    shards: 4,
                    backend,
                    key_space: 100,
                    batched: true,
                    ..ShardedConfig::default()
                })
                .unwrap(),
            );
            assert!(map.is_batched());
            let mut h = map.handle();
            // Shard 1 owns [25, 50) under range routing.
            let plan = vec![
                BatchOp::Insert(30, 1),
                BatchOp::Insert(31, 2),
                BatchOp::Get(30),
                BatchOp::Remove(31),
                BatchOp::Insert(30, 9),
            ];
            let (replies, _path) = h.shard_batch(1, &plan);
            assert_eq!(
                replies,
                vec![None, None, Some(1), Some(2), Some(1)],
                "{backend}"
            );
            assert_eq!(h.get(30), Some(9));
            assert_eq!(h.get(31), None);
            drop(h);
            map.validate().unwrap();
        }
    }

    #[test]
    fn shard_sub_scans_merge_like_a_range_query() {
        let map = small_hash(4, ShardBackend::Bst);
        let mut h = map.handle();
        for k in 0..80u64 {
            h.insert(k, k);
        }
        let direct = h.range_query(10, 70);
        let runs: Vec<Vec<(u64, u64)>> = (0..4)
            .map(|s| h.shard_range_query(s, 10, 70))
            .filter(|r| !r.is_empty())
            .collect();
        assert_eq!(merge_sorted_runs(runs), direct);
        // A shard outside the plan returns nothing.
        assert_eq!(h.shard_range_query(3, 5, 5), vec![]);
    }

    #[test]
    #[should_panic(expected = "routes to shard")]
    fn cross_shard_plans_are_rejected() {
        let map = Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards: 4,
                key_space: 100,
                batched: true,
                ..ShardedConfig::default()
            })
            .unwrap(),
        );
        let mut h = map.handle();
        // Key 90 belongs to shard 3, not shard 0.
        h.shard_batch(0, &[BatchOp::Insert(1, 1), BatchOp::Insert(90, 1)]);
    }

    #[test]
    fn degenerate_batching_and_admission_probe_are_typed_errors() {
        let err = ShardedMap::with_config(ShardedConfig {
            strategy: Strategy::NonHtm,
            batched: true,
            ..ShardedConfig::default()
        })
        .unwrap_err();
        assert_eq!(err, ConfigError::BatchedStrategy(Strategy::NonHtm));
        let err = ShardedMap::with_config(ShardedConfig {
            admission_probe: Some(threepath_core::AdmissionProbeConfig {
                ladder: vec![],
                ..threepath_core::AdmissionProbeConfig::default()
            }),
            ..ShardedConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidAdmissionProbe(_)));
        // Sane values pass and the map still works.
        let map = Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards: 2,
                key_space: 100,
                batched: true,
                admission_probe: Some(threepath_core::AdmissionProbeConfig::default()),
                ..ShardedConfig::default()
            })
            .unwrap(),
        );
        let mut h = map.handle();
        h.shard_batch(0, &[BatchOp::Insert(3, 3)]);
        assert_eq!(h.get(3), Some(3));
        drop(h);
        map.validate().unwrap();
    }

    #[test]
    fn merge_sorted_runs_interleaves() {
        assert_eq!(merge_sorted_runs(vec![]), vec![]);
        assert_eq!(merge_sorted_runs(vec![vec![(1, 1)]]), vec![(1, 1)]);
        let merged = merge_sorted_runs(vec![
            vec![(1, 0), (5, 0), (9, 0)],
            vec![(2, 0), (3, 0)],
            vec![(4, 0), (8, 0)],
        ]);
        assert_eq!(
            merged.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5, 8, 9]
        );
    }
}
