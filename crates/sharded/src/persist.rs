//! The sharded map's durability wiring: one [`ShardWal`] per shard
//! behind a mutex, the commit-hook discipline that makes the log a
//! write-ahead total order of the shard's committed plans, and the
//! map-level recovery entry.
//!
//! # Why the commit hook lives here and not inside `run_op`
//!
//! Commit order on a shard is only *observable* where updates are
//! serialized: inside the HTM fast path two plans may race and the
//! winner is decided by the hardware, so a hook there could log in an
//! order that differs from the commit order. The sharded layer instead
//! takes the shard's log lock around `append + execute`, making log
//! order, lock order, and commit order the same order by construction.
//! The cost when persistence is off is a single armed `Option` check
//! per update — the same zero-cost discipline the snapshot tier uses.
//!
//! # What the guarantee is
//!
//! A record is appended (one sequential `write_all` into the kernel)
//! **before** its plan executes and before any reply publishes. After a
//! process kill, recovery replays every fully-framed record: every
//! acknowledged update is restored (its record preceded the reply), and
//! no batch is half-applied (a batch is one record, atomic under its
//! checksum). A record whose plan never executed replays as a fully
//! applied but unacknowledged batch — permitted, since the plan had
//! been accepted and would have committed. `fsync` policy only widens
//! this to *machine* crashes; see [`FsyncPolicy`].

use std::sync::{Arc, Mutex, MutexGuard};

use threepath_core::{BatchApply, BatchOp};
use threepath_persist::{
    read_manifest, recover_shard, write_manifest, Manifest, PersistConfig, PersistError,
    RecoveryReport, ShardWal, WalStats,
};

use crate::map::{ShardedConfig, ShardedMap};
use crate::router::{ConfigError, RouterKind};
use crate::tree::ShardBackend;

fn backend_tag(b: ShardBackend) -> u32 {
    match b {
        ShardBackend::Bst => 0,
        ShardBackend::AbTree => 1,
    }
}

fn router_tag(r: RouterKind) -> u32 {
    match r {
        RouterKind::Range => 0,
        RouterKind::Hash => 1,
    }
}

fn manifest_of(cfg: &ShardedConfig) -> Manifest {
    Manifest {
        shards: cfg.shards as u32,
        backend: backend_tag(cfg.backend),
        router: router_tag(cfg.router),
        key_space: cfg.key_space,
    }
}

/// The per-map durability state: one log writer per shard. Mutating
/// operations on shard `s` hold `logs[s]` across *append + execute*, so
/// the log is a total order of that shard's committed plans.
pub(crate) struct PersistLayer {
    logs: Vec<Mutex<ShardWal>>,
}

impl std::fmt::Debug for PersistLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistLayer")
            .field("shards", &self.logs.len())
            .finish()
    }
}

impl PersistLayer {
    /// Initializes a fresh persistence directory for `cfg`: manifest
    /// plus one empty log per shard. Refuses (typed) to clobber an
    /// already-initialized directory.
    pub(crate) fn create(cfg: &ShardedConfig) -> Result<PersistLayer, ConfigError> {
        let p = cfg.persist.as_ref().expect("caller checked persist is set");
        std::fs::create_dir_all(&p.dir).map_err(|e| {
            ConfigError::Persist(PersistError::Io {
                op: "create dir",
                path: p.dir.display().to_string(),
                kind: e.kind(),
                msg: e.to_string(),
            })
        })?;
        write_manifest(&p.dir, &manifest_of(cfg)).map_err(ConfigError::Persist)?;
        let logs = (0..cfg.shards)
            .map(|s| ShardWal::create(p, s as u32).map(Mutex::new))
            .collect::<Result<Vec<_>, _>>()
            .map_err(ConfigError::Persist)?;
        Ok(PersistLayer { logs })
    }

    /// Wraps recovered log writers (recovery constructs them itself).
    pub(crate) fn from_wals(wals: Vec<ShardWal>) -> PersistLayer {
        PersistLayer {
            logs: wals.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Locks shard `s`'s log. Poisoning is fatal by design: a panic
    /// while holding the log lock means an append or apply died midway,
    /// and continuing would fork the log from the tree.
    pub(crate) fn lock(&self, shard: usize) -> MutexGuard<'_, ShardWal> {
        self.logs[shard]
            .lock()
            .expect("shard log lock poisoned: a persistent update panicked mid-commit")
    }

    /// Lifetime counters summed across shards.
    pub(crate) fn stats(&self) -> WalStats {
        let mut total = WalStats::default();
        for l in &self.logs {
            total.merge(&self.lock_of(l).stats());
        }
        total
    }

    /// Flushes and fsyncs every shard's log (graceful-shutdown barrier).
    pub(crate) fn sync_all(&self) -> Result<(), PersistError> {
        for l in &self.logs {
            self.lock_of(l).sync()?;
        }
        Ok(())
    }

    fn lock_of<'a>(&self, l: &'a Mutex<ShardWal>) -> MutexGuard<'a, ShardWal> {
        l.lock()
            .expect("shard log lock poisoned: a persistent update panicked mid-commit")
    }
}

/// Validates `cfg` against the manifest already in its persistence
/// directory, recovers every shard, and returns the recovered wals
/// plus per-shard pair sets and reports.
#[allow(clippy::type_complexity)]
pub(crate) fn recover_layer(
    cfg: &ShardedConfig,
) -> Result<(PersistLayer, Vec<Vec<(u64, u64)>>, Vec<RecoveryReport>), ConfigError> {
    let p = cfg.persist.as_ref().ok_or(ConfigError::Persist(PersistError::NotPersisted))?;
    let want = manifest_of(cfg);
    let stored = read_manifest(&p.dir)
        .map_err(ConfigError::Persist)?
        .ok_or_else(|| {
            ConfigError::Persist(PersistError::Io {
                op: "read manifest",
                path: p.dir.display().to_string(),
                kind: std::io::ErrorKind::NotFound,
                msg: "directory holds no manifest — nothing to recover".into(),
            })
        })?;
    for (field, s, c) in [
        ("shards", stored.shards as u64, want.shards as u64),
        ("backend", stored.backend as u64, want.backend as u64),
        ("router", stored.router as u64, want.router as u64),
        ("key_space", stored.key_space, want.key_space),
    ] {
        if s != c {
            return Err(ConfigError::Persist(PersistError::ManifestMismatch {
                field,
                stored: s,
                configured: c,
            }));
        }
    }
    let mut wals = Vec::with_capacity(cfg.shards);
    let mut pairs = Vec::with_capacity(cfg.shards);
    let mut reports = Vec::with_capacity(cfg.shards);
    for s in 0..cfg.shards {
        let r = recover_shard(p, s as u32).map_err(ConfigError::Persist)?;
        wals.push(r.wal);
        pairs.push(r.pairs);
        reports.push(r.report);
    }
    Ok((PersistLayer::from_wals(wals), pairs, reports))
}

/// Validates the persistence knobs of `cfg` (called from
/// `ShardedConfig::validate`).
pub(crate) fn validate_persist(cfg: &ShardedConfig) -> Result<(), ConfigError> {
    if let Some(p) = &cfg.persist {
        p.validate().map_err(ConfigError::Persist)?;
    }
    Ok(())
}

/// A [`BatchApply`] wrapper that appends each flat-combined plan's
/// record *before* the plan applies, so the write-ahead invariant holds
/// for every plan the combiner drains while holding the fallback lock —
/// the server publishes those replies inside the combining closure.
pub(crate) struct LoggedApply<'a, 'b> {
    pub(crate) wal: &'a mut ShardWal,
    pub(crate) inner: &'b mut dyn BatchApply,
}

impl BatchApply for LoggedApply<'_, '_> {
    fn apply(&mut self, ops: &[BatchOp]) -> Vec<Option<u64>> {
        self.wal
            .append(ops)
            .expect("WAL append failed while flat combining (fail-stop: the log is the map)");
        self.inner.apply(ops)
    }
}

impl ShardedMap {
    /// Recovers a persistent map from `dir`: validates the manifest
    /// against `cfg`, loads each shard's snapshot, replays its log tail
    /// (discarding torn or corrupt tail records), and rebuilds the
    /// shards. `cfg.persist` supplies the tuning; its `dir` field is
    /// overridden by `dir` (pass a default [`PersistConfig`] to recover
    /// with default tuning). Returns the map and one [`RecoveryReport`]
    /// per shard.
    ///
    /// Never panics on bad bytes: every malformed state is a typed
    /// [`PersistError`] inside [`ConfigError::Persist`].
    pub fn recover(
        dir: impl Into<std::path::PathBuf>,
        mut cfg: ShardedConfig,
    ) -> Result<(Arc<ShardedMap>, Vec<RecoveryReport>), ConfigError> {
        let dir = dir.into();
        let mut p = cfg.persist.take().unwrap_or_else(|| PersistConfig::new(&dir));
        p.dir = dir;
        cfg.persist = Some(p);
        Self::recover_with_config(cfg)
    }

    /// [`ShardedMap::recover`] with the directory taken from
    /// `cfg.persist` (which must be set).
    pub fn recover_with_config(
        cfg: ShardedConfig,
    ) -> Result<(Arc<ShardedMap>, Vec<RecoveryReport>), ConfigError> {
        cfg.validate()?;
        if cfg.persist.is_none() {
            return Err(ConfigError::Persist(PersistError::NotPersisted));
        }
        let (layer, pairs, reports) = recover_layer(&cfg)?;
        let map = Self::build_recovered(cfg, layer)?;
        // Refill each shard directly through its tree handle: replay
        // must not re-log (the records are already durable) and must
        // not re-route (the manifest pinned the partition). The pairs
        // arrive in sorted key order, which would degenerate the
        // unbalanced external BST into a list (quadratic recovery);
        // median-first insertion rebuilds a balanced tree instead and
        // is harmless for the self-balancing (a,b)-tree backend.
        for (s, shard_pairs) in pairs.into_iter().enumerate() {
            let mut h = map.shard_tree(s).handle();
            let mut ranges = vec![(0usize, shard_pairs.len())];
            while let Some((lo, hi)) = ranges.pop() {
                if lo >= hi {
                    continue;
                }
                let mid = lo + (hi - lo) / 2;
                let (k, v) = shard_pairs[mid];
                h.insert(k, v);
                ranges.push((lo, mid));
                ranges.push((mid + 1, hi));
            }
        }
        Ok((map, reports))
    }

    /// Aggregated write-ahead-log counters, or `None` on a volatile map.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.persist_layer().map(PersistLayer::stats)
    }

    /// Flushes and fsyncs every shard's log — the graceful-shutdown
    /// durability barrier. No-op on a volatile map.
    pub fn sync_persist(&self) -> Result<(), PersistError> {
        match self.persist_layer() {
            Some(l) => l.sync_all(),
            None => Ok(()),
        }
    }

    /// Whether this map persists its updates.
    pub fn is_persistent(&self) -> bool {
        self.persist_layer().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use threepath_persist::FsyncPolicy;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) fn test_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "threepath-sharded-persist-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    fn persisted(dir: &std::path::Path, shards: usize) -> ShardedConfig {
        ShardedConfig {
            shards,
            key_space: 100,
            batched: true,
            persist: Some(PersistConfig {
                fsync: FsyncPolicy::Never,
                snapshot_every: None,
                ..PersistConfig::new(dir)
            }),
            ..ShardedConfig::default()
        }
    }

    #[test]
    fn point_ops_round_trip_through_recovery() {
        let dir = test_dir("points");
        let cfg = persisted(&dir, 4);
        let map = Arc::new(ShardedMap::with_config(cfg.clone()).unwrap());
        let mut h = map.handle();
        for k in 0..50u64 {
            assert_eq!(h.insert(k, k * 3), None);
        }
        assert_eq!(h.remove(7), Some(21));
        assert_eq!(h.insert(9, 999), Some(27));
        assert_eq!(h.get(9), Some(999), "reads still work on a persistent map");
        drop(h);
        let expect_pairs = map.collect();
        drop(map);

        let (rec, reports) = ShardedMap::recover(&dir, cfg).unwrap();
        assert_eq!(rec.collect(), expect_pairs);
        rec.validate().unwrap();
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().map(|r| r.records_replayed).sum::<u64>() >= 52);
        fs_cleanup(&dir);
    }

    #[test]
    fn batches_and_combining_are_logged_write_ahead() {
        let dir = test_dir("batches");
        let cfg = persisted(&dir, 2);
        let map = Arc::new(ShardedMap::with_config(cfg.clone()).unwrap());
        let mut h = map.handle();
        // Shard 0 owns [0, 50) under range routing.
        let (replies, _) = h.shard_batch(
            0,
            &[
                threepath_core::BatchOp::Insert(1, 10),
                threepath_core::BatchOp::Get(1),
                threepath_core::BatchOp::Remove(1),
                threepath_core::BatchOp::Insert(2, 20),
            ],
        );
        assert_eq!(replies, vec![None, Some(10), Some(10), None]);
        let stats = h.stats();
        assert_eq!(stats.wal_records(), 1, "one batch = one record");
        drop(h);
        let wal = map.wal_stats().unwrap();
        assert_eq!(wal.records, 1);
        drop(map);
        let (rec, _) = ShardedMap::recover(&dir, cfg).unwrap();
        assert_eq!(rec.collect(), vec![(2, 20)]);
        fs_cleanup(&dir);
    }

    #[test]
    fn volatile_maps_have_no_wal() {
        let map = Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards: 2,
                key_space: 100,
                ..ShardedConfig::default()
            })
            .unwrap(),
        );
        assert!(!map.is_persistent());
        assert_eq!(map.wal_stats(), None);
        map.sync_persist().unwrap();
        let mut h = map.handle();
        h.insert(1, 1);
        assert_eq!(h.stats().wal_records(), 0);
    }

    #[test]
    fn snapshots_bound_recovery_replay() {
        let dir = test_dir("snap");
        let mut cfg = persisted(&dir, 2);
        cfg.persist.as_mut().unwrap().snapshot_every = Some(10);
        let map = Arc::new(ShardedMap::with_config(cfg.clone()).unwrap());
        let mut h = map.handle();
        for k in 0..60u64 {
            h.insert(k, k);
        }
        let snapshots = h.stats().wal_snapshots();
        assert!(snapshots >= 4, "cadence 10 over ~30 records/shard snapshots: {snapshots}");
        drop(h);
        let pairs = map.collect();
        drop(map);
        let (rec, reports) = ShardedMap::recover(&dir, cfg).unwrap();
        assert_eq!(rec.collect(), pairs);
        for r in &reports {
            assert!(
                r.records_replayed <= 10,
                "snapshot failed to bound replay: {r}"
            );
            assert!(r.snapshot_seq > 0);
        }
        fs_cleanup(&dir);
    }

    #[test]
    fn fresh_build_refuses_an_initialized_dir_and_layout_drift_fails_closed() {
        let dir = test_dir("manifest");
        let cfg = persisted(&dir, 2);
        assert!(!cfg.persist.as_ref().unwrap().initialized());
        let map = ShardedMap::with_config(cfg.clone()).unwrap();
        assert!(cfg.persist.as_ref().unwrap().initialized());
        drop(map);
        // Building fresh again would clobber.
        assert!(matches!(
            ShardedMap::with_config(cfg.clone()),
            Err(ConfigError::Persist(PersistError::WouldClobber { .. }))
        ));
        // Recovery under a different layout is a typed mismatch.
        let mut drifted = cfg.clone();
        drifted.shards = 4;
        assert!(matches!(
            ShardedMap::recover(&dir, drifted),
            Err(ConfigError::Persist(PersistError::ManifestMismatch { field: "shards", .. }))
        ));
        let mut drifted = cfg.clone();
        drifted.backend = ShardBackend::AbTree;
        assert!(matches!(
            ShardedMap::recover(&dir, drifted),
            Err(ConfigError::Persist(PersistError::ManifestMismatch { field: "backend", .. }))
        ));
        // Recovery with the true layout works.
        ShardedMap::recover(&dir, cfg).unwrap();
        fs_cleanup(&dir);
    }

    #[test]
    fn recover_without_persist_config_is_typed() {
        let dir = test_dir("nopersist");
        let err = ShardedMap::recover_with_config(ShardedConfig::default()).unwrap_err();
        assert_eq!(err, ConfigError::Persist(PersistError::NotPersisted));
        // recover(dir, cfg) fills in a default persist config; with no
        // manifest on disk that is a typed error too, not a panic.
        assert!(matches!(
            ShardedMap::recover(&dir, ShardedConfig::default()),
            Err(ConfigError::Persist(PersistError::Io { .. }))
        ));
        fs_cleanup(&dir);
    }

    #[test]
    fn torn_tail_at_map_level_is_truncated_not_fatal() {
        use std::io::Write;
        let dir = test_dir("torn");
        let cfg = persisted(&dir, 2);
        let map = Arc::new(ShardedMap::with_config(cfg.clone()).unwrap());
        let mut h = map.handle();
        for k in 0..20u64 {
            h.insert(k, k);
        }
        drop(h);
        let pairs = map.collect();
        drop(map);
        // Tear shard 0's log tail with garbage.
        let wal0 = dir.join("shard-0.wal");
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal0).unwrap();
        f.write_all(&[0x5A; 21]).unwrap();
        drop(f);
        let (rec, reports) = ShardedMap::recover(&dir, cfg).unwrap();
        assert_eq!(rec.collect(), pairs);
        assert_eq!(reports[0].bytes_truncated, 21);
        assert_eq!(reports[1].bytes_truncated, 0);
        fs_cleanup(&dir);
    }

    #[test]
    fn degenerate_persist_tuning_is_a_config_error() {
        let dir = test_dir("tuning");
        let mut cfg = persisted(&dir, 2);
        cfg.persist.as_mut().unwrap().snapshot_every = Some(0);
        assert!(matches!(
            ShardedMap::with_config(cfg),
            Err(ConfigError::Persist(PersistError::InvalidConfig(_)))
        ));
        fs_cleanup(&dir);
    }

    fn fs_cleanup(dir: &std::path::Path) {
        std::fs::remove_dir_all(dir).ok();
    }
}
