//! Per-shard adaptive strategy: each shard observes its own abort profile
//! and switches between TLE and 3-path independently.
//!
//! The paper's central claim is that fallback-path design dominates HTM
//! performance once transactions start aborting — and *which* fallback is
//! right depends on **why** they abort:
//!
//! * **Conflict-dominated** abort storms mean real contention. TLE's
//!   fallback is a per-shard global lock, so every storming operation
//!   convoys behind it; the 3-path algorithm's lock-free fallback keeps
//!   the shard concurrent. A conflict storm therefore switches the shard
//!   to [`Strategy::ThreePath`].
//! * **Spurious/capacity-dominated** storms mean the shard's HTM is
//!   structurally failing regardless of contention (interrupt pressure,
//!   footprints beyond capacity). Optimistic retries are pure waste, and
//!   the cheapest way out is TLE: give up quickly and run plain
//!   sequential code under the shard's lock, with none of the lock-free
//!   template's instrumentation. Such a storm switches the shard to
//!   [`Strategy::Tle`].
//! * A **calm** shard (abort rate at or below the promote threshold)
//!   reverts to the configured preferred strategy.
//!
//! The [`AdaptiveController`] decides per shard. Handles push windowed
//! `(completed, conflict-abort, other-abort)` deltas from their own
//! [`PathStats`] — already tracked per shard — every
//! [`AdaptiveConfig::sample_every`] operations; once a shard's window
//! accumulates [`AdaptiveConfig::epoch_ops`] completions, whoever crosses
//! the threshold claims the window, classifies it, and swaps that shard's
//! strategy through [`ShardTree::set_strategy`]. Because every shard owns
//! its own HTM runtime and reclamation domain, the swap needs no
//! cross-shard coordination — and within the shard the blended
//! subscription discipline ([`threepath_core::ExecCtx`]) makes the swap
//! safe with operations in flight.
//!
//! [`PathStats`]: threepath_core::PathStats
//! [`Strategy::ThreePath`]: threepath_core::Strategy::ThreePath
//! [`Strategy::Tle`]: threepath_core::Strategy::Tle

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use threepath_core::Strategy;

use crate::router::ConfigError;
use crate::tree::ShardTree;

/// Tuning for the per-shard adaptive strategy controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Handle-local operations on a shard between pushes of that
    /// handle's windowed stats into the controller. Smaller values react
    /// faster but touch the shared counters more often.
    pub sample_every: u64,
    /// Completed operations a shard's shared window must accumulate
    /// before a strategy decision is taken.
    pub epoch_ops: u64,
    /// Window abort rate (aborted attempts per completed operation) at or
    /// above which a shard is in an abort storm and switches to the
    /// storm-appropriate strategy: 3-path when the window's aborts are
    /// conflict-dominated (contention wants the lock-free fallback), TLE
    /// otherwise (spurious/capacity waste wants cheap sequential code
    /// under the shard lock).
    pub demote_abort_rate: f64,
    /// Window abort rate at or below which a shard is calm and reverts
    /// to the configured preferred strategy. Keep this well under
    /// [`demote_abort_rate`](Self::demote_abort_rate) — the gap is the
    /// hysteresis band that prevents flapping.
    pub promote_abort_rate: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            sample_every: 64,
            epoch_ops: 2048,
            demote_abort_rate: 2.0,
            promote_abort_rate: 0.5,
        }
    }
}

struct ShardCtl {
    window_ops: AtomicU64,
    window_conflicts: AtomicU64,
    window_other: AtomicU64,
    lifetime_ops: AtomicU64,
    lifetime_aborts: AtomicU64,
    mode: AtomicU8,
    /// Decision latch: `mode` and the tree's actual strategy only ever
    /// change together while this is held, so they cannot desynchronize
    /// under racing epoch decisions.
    deciding: AtomicBool,
    flips: AtomicU64,
}

/// The per-shard strategy controller of an adaptive
/// [`ShardedMap`](crate::ShardedMap). See the module docs.
pub struct AdaptiveController {
    cfg: AdaptiveConfig,
    preferred: Strategy,
    shards: Vec<ShardCtl>,
}

impl AdaptiveController {
    /// A controller for `shards` shards all starting on (and reverting
    /// to) `preferred`.
    pub fn new(
        cfg: AdaptiveConfig,
        shards: usize,
        preferred: Strategy,
    ) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if cfg.sample_every == 0 || cfg.epoch_ops == 0 {
            return Err(ConfigError::ZeroAdaptiveInterval);
        }
        if !threepath_core::ADAPTIVE_STRATEGIES.contains(&preferred) {
            return Err(ConfigError::AdaptiveStrategy(preferred));
        }
        Ok(AdaptiveController {
            cfg,
            preferred,
            shards: (0..shards)
                .map(|_| ShardCtl {
                    window_ops: AtomicU64::new(0),
                    window_conflicts: AtomicU64::new(0),
                    window_other: AtomicU64::new(0),
                    lifetime_ops: AtomicU64::new(0),
                    lifetime_aborts: AtomicU64::new(0),
                    mode: AtomicU8::new(preferred.code()),
                    deciding: AtomicBool::new(false),
                    flips: AtomicU64::new(0),
                })
                .collect(),
        })
    }

    /// The controller's tuning.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// The preferred (initial, calm-state) strategy.
    pub fn preferred(&self) -> Strategy {
        self.preferred
    }

    /// The strategy shard `shard` currently runs.
    pub fn strategy_of(&self, shard: usize) -> Strategy {
        Strategy::from_code(self.shards[shard].mode.load(Ordering::Acquire))
            .expect("mode atomic holds a valid code")
    }

    /// Every shard's current strategy, in shard order.
    pub fn strategies(&self) -> Vec<Strategy> {
        (0..self.shards.len()).map(|s| self.strategy_of(s)).collect()
    }

    /// How many times shard `shard` has switched strategy.
    pub fn flips(&self, shard: usize) -> u64 {
        self.shards[shard].flips.load(Ordering::Relaxed)
    }

    /// Total strategy switches across all shards.
    pub fn total_flips(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.flips(s)).sum()
    }

    /// Lifetime `(completed, aborted)` attempt counts observed for shard
    /// `shard` — the per-shard load picture the controller decides from
    /// (completions across all paths, aborts of every kind and path).
    pub fn observed(&self, shard: usize) -> (u64, u64) {
        let c = &self.shards[shard];
        (
            c.lifetime_ops.load(Ordering::Relaxed),
            c.lifetime_aborts.load(Ordering::Relaxed),
        )
    }

    /// The strategy the window calls for, or `None` inside the
    /// hysteresis band.
    fn classify(&self, ops: u64, conflicts: u64, other: u64) -> Option<Strategy> {
        let rate = (conflicts + other) as f64 / ops as f64;
        if rate >= self.cfg.demote_abort_rate {
            // Storm: pick the fallback suited to the dominant cause.
            Some(if conflicts >= other {
                Strategy::ThreePath
            } else {
                Strategy::Tle
            })
        } else if rate <= self.cfg.promote_abort_rate {
            Some(self.preferred)
        } else {
            None
        }
    }

    /// Accumulates a handle's windowed `(completed, conflict-abort,
    /// other-abort)` delta for `shard` and, when the shard's window
    /// crosses the epoch, decides whether to swap `tree`'s strategy.
    /// Called by [`ShardedHandle`](crate::ShardedHandle); `tree` must be
    /// the shard's own tree.
    pub(crate) fn record(
        &self,
        shard: usize,
        ops: u64,
        conflicts: u64,
        other: u64,
        tree: &ShardTree,
    ) {
        let ctl = &self.shards[shard];
        ctl.lifetime_ops.fetch_add(ops, Ordering::Relaxed);
        ctl.lifetime_aborts.fetch_add(conflicts + other, Ordering::Relaxed);
        ctl.window_conflicts.fetch_add(conflicts, Ordering::Relaxed);
        ctl.window_other.fetch_add(other, Ordering::Relaxed);
        let window = ctl.window_ops.fetch_add(ops, Ordering::Relaxed) + ops;
        if window < self.cfg.epoch_ops {
            return;
        }
        // Claim the window. A racing handle that also crossed the epoch
        // swaps out zero (or a few freshly-pushed ops) and bails on the
        // size guard below, so at most one decision is taken per epoch.
        let ops_w = ctl.window_ops.swap(0, Ordering::Relaxed);
        let conflicts_w = ctl.window_conflicts.swap(0, Ordering::Relaxed);
        let other_w = ctl.window_other.swap(0, Ordering::Relaxed);
        if ops_w < self.cfg.epoch_ops / 2 {
            return;
        }
        let Some(next) = self.classify(ops_w, conflicts_w, other_w) else {
            return;
        };
        // Apply under the decision latch so `mode` and the tree's actual
        // strategy move together — without it, a preempted loser of a
        // mode CAS could apply a stale `set_strategy` over a newer
        // decision and leave the two permanently disagreeing. Decisions
        // are rare (once per epoch); a contended latch just drops this
        // window's decision.
        if ctl
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        if next != self.strategy_of(shard) {
            tree.set_strategy(next)
                .expect("adaptive shards are built with runtime swapping enabled");
            ctl.mode.store(next.code(), Ordering::Release);
            ctl.flips.fetch_add(1, Ordering::Relaxed);
        }
        ctl.deciding.store(false, Ordering::Release);
    }
}

impl std::fmt::Debug for AdaptiveController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveController")
            .field("cfg", &self.cfg)
            .field("preferred", &self.preferred)
            .field("strategies", &self.strategies())
            .field("flips", &self.total_flips())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ShardedConfig;

    fn adaptive_tree(strategy: Strategy) -> ShardTree {
        ShardTree::build(&ShardedConfig {
            strategy,
            adaptive: Some(AdaptiveConfig::default()),
            ..ShardedConfig::default()
        })
    }

    fn ctl(preferred: Strategy, epoch_ops: u64) -> AdaptiveController {
        AdaptiveController::new(
            AdaptiveConfig {
                epoch_ops,
                ..AdaptiveConfig::default()
            },
            2,
            preferred,
        )
        .unwrap()
    }

    #[test]
    fn invalid_tuning_is_a_typed_error() {
        let bad = AdaptiveConfig {
            epoch_ops: 0,
            ..AdaptiveConfig::default()
        };
        assert_eq!(
            AdaptiveController::new(bad, 2, Strategy::Tle).unwrap_err(),
            ConfigError::ZeroAdaptiveInterval
        );
        assert_eq!(
            AdaptiveController::new(AdaptiveConfig::default(), 0, Strategy::Tle).unwrap_err(),
            ConfigError::ZeroShards
        );
        assert_eq!(
            AdaptiveController::new(AdaptiveConfig::default(), 2, Strategy::NonHtm).unwrap_err(),
            ConfigError::AdaptiveStrategy(Strategy::NonHtm)
        );
    }

    #[test]
    fn spurious_storm_demotes_to_tle() {
        let ctl = ctl(Strategy::ThreePath, 100);
        let tree = adaptive_tree(Strategy::ThreePath);
        // Shard 0: 100 ops, 500 spurious/capacity aborts, no conflicts:
        // HTM is wasted work, drop to lock-based sequential execution.
        ctl.record(0, 100, 0, 500, &tree);
        assert_eq!(ctl.strategy_of(0), Strategy::Tle);
        assert_eq!(tree.strategy(), Strategy::Tle);
        assert_eq!(ctl.flips(0), 1);
        // Shard 1 untouched.
        assert_eq!(ctl.strategy_of(1), Strategy::ThreePath);
        assert_eq!(ctl.flips(1), 0);
        assert_eq!(ctl.observed(0), (100, 500));
    }

    #[test]
    fn conflict_storm_demotes_to_three_path() {
        let ctl = ctl(Strategy::Tle, 100);
        let tree = adaptive_tree(Strategy::Tle);
        // Conflict-dominated storm: contention wants the lock-free
        // fallback, not a convoy on the shard lock.
        ctl.record(0, 100, 400, 100, &tree);
        assert_eq!(ctl.strategy_of(0), Strategy::ThreePath);
        assert_eq!(tree.strategy(), Strategy::ThreePath);
    }

    #[test]
    fn calm_windows_revert_to_preferred_with_hysteresis() {
        let ctl = ctl(Strategy::ThreePath, 100);
        let tree = adaptive_tree(Strategy::ThreePath);
        ctl.record(0, 100, 0, 400, &tree);
        assert_eq!(ctl.strategy_of(0), Strategy::Tle);
        // Mid-band rate: stays put (hysteresis).
        ctl.record(0, 100, 0, 100, &tree);
        assert_eq!(ctl.strategy_of(0), Strategy::Tle);
        // Calm window: reverts to the preferred strategy.
        ctl.record(0, 100, 0, 10, &tree);
        assert_eq!(ctl.strategy_of(0), Strategy::ThreePath);
        assert_eq!(tree.strategy(), Strategy::ThreePath);
        assert_eq!(ctl.flips(0), 2);
    }

    #[test]
    fn sub_epoch_windows_do_not_decide() {
        let ctl = ctl(Strategy::ThreePath, 1000);
        let tree = adaptive_tree(Strategy::ThreePath);
        for _ in 0..9 {
            ctl.record(0, 100, 0, 1000, &tree);
            assert_eq!(
                ctl.strategy_of(0),
                Strategy::ThreePath,
                "no decision before epoch"
            );
        }
        ctl.record(0, 100, 0, 1000, &tree);
        assert_eq!(ctl.strategy_of(0), Strategy::Tle);
    }
}
