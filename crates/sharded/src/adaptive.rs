//! Per-shard adaptive strategy: each shard probes TLE and 3-path against
//! each other and runs whichever one measures faster.
//!
//! The paper's central claim is that fallback-path design dominates HTM
//! performance once transactions start aborting — and *which* fallback is
//! right depends on the abort mix, the capacity profile, and the
//! platform. Earlier revisions classified abort storms against hand-tuned
//! rate thresholds (demote above X, promote below Y) and encoded a guess
//! about which strategy each storm class wants. This controller does not
//! guess: every shard owns a [`Controller`] (by default a
//! [`ProbingController`]) over the [`ADAPTIVE_STRATEGIES`] arms, feeds it
//! one [`Window`] per epoch — completed operations, attempts, and
//! wall-clock nanoseconds — and runs whatever arm the controller picks.
//! A strategy only survives by measuring fastest on this shard, on this
//! machine, under the current workload.
//!
//! Handles push windowed `(completed, conflict-abort, other-abort)`
//! deltas from their own [`PathStats`] — already tracked per shard —
//! every [`AdaptiveConfig::sample_every`] operations; once a shard's
//! window accumulates [`AdaptiveConfig::epoch_ops`] completions, whoever
//! crosses the threshold takes the shard's decision latch, claims the
//! window, and feeds it to the shard's controller. Because every shard
//! owns its own HTM runtime and reclamation domain, a strategy swap
//! needs no cross-shard coordination — and within the shard the blended
//! subscription discipline ([`threepath_core::ExecCtx`]) makes the swap
//! safe with operations in flight.
//!
//! **Window-claim discipline.** The latch is taken *before* the window
//! counters are swapped out, so there is exactly one claimant per epoch
//! and every pushed count lands in exactly one claimed window. (The
//! previous revision swapped first and raced for the latch after: a
//! losing claimant would swap out a partially-refilled window and throw
//! it away, silently losing counts and misattributing the abort mix
//! across windows.)
//!
//! [`PathStats`]: threepath_core::PathStats
//! [`ADAPTIVE_STRATEGIES`]: threepath_core::ADAPTIVE_STRATEGIES

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use threepath_core::{Controller, ProbeConfig, ProbingController, Strategy, Window};

use crate::router::ConfigError;
use crate::tree::ShardTree;

/// Tuning for the per-shard adaptive strategy controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Handle-local operations on a shard between pushes of that
    /// handle's windowed stats into the controller. Smaller values react
    /// faster but touch the shared counters more often.
    pub sample_every: u64,
    /// Completed operations a shard's shared window must accumulate
    /// before the window is claimed and fed to the shard's controller.
    /// Must be at least 2: a one-operation window carries no comparative
    /// signal, and the under-full guard (`epoch_ops / 2`) degenerates.
    pub epoch_ops: u64,
    /// Probe/settle cadence of each shard's default
    /// [`ProbingController`]. Ignored when a custom
    /// [`ControllerFactory`] supplies the controllers.
    pub probe: ProbeConfig,
    /// Score claimed windows by wall-clock throughput (ops per second).
    /// Off scores by completed ops per attempt instead — deterministic,
    /// for tests and single-stepped environments.
    pub wall_clock: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            sample_every: 64,
            epoch_ops: 2048,
            probe: ProbeConfig::default(),
            wall_clock: true,
        }
    }
}

impl AdaptiveConfig {
    pub(crate) fn validate(&self) -> Result<(), ConfigError> {
        if self.sample_every == 0 || self.epoch_ops < 2 || self.epoch_ops > (1 << 30) {
            return Err(ConfigError::ZeroAdaptiveInterval);
        }
        self.probe.validate().map_err(ConfigError::InvalidProbe)?;
        Ok(())
    }
}

/// Builds one [`Controller`] per shard — the pluggable seam for maps
/// that want a policy other than the default [`ProbingController`]
/// (fixed oracles in benchmarks, recording controllers in tests,
/// experimental policies).
///
/// The closure receives the shard index and must return a controller
/// with exactly [`ADAPTIVE_STRATEGIES`] arms whose arm indices map to
/// those strategies in order.
///
/// [`ADAPTIVE_STRATEGIES`]: threepath_core::ADAPTIVE_STRATEGIES
#[derive(Clone)]
pub struct ControllerFactory(Arc<dyn Fn(usize) -> Box<dyn Controller> + Send + Sync>);

impl ControllerFactory {
    /// A factory from a `shard index -> controller` closure.
    pub fn new(f: impl Fn(usize) -> Box<dyn Controller> + Send + Sync + 'static) -> Self {
        ControllerFactory(Arc::new(f))
    }

    fn build(&self, shard: usize) -> Box<dyn Controller> {
        (self.0)(shard)
    }
}

impl fmt::Debug for ControllerFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ControllerFactory(..)")
    }
}

struct ShardCtl {
    ctl: Box<dyn Controller>,
    window_ops: AtomicU64,
    window_conflicts: AtomicU64,
    window_other: AtomicU64,
    /// Nanoseconds (offset from the controller's base instant) at which
    /// the currently-filling window opened.
    win_start: AtomicU64,
    lifetime_ops: AtomicU64,
    lifetime_aborts: AtomicU64,
    mode: AtomicU8,
    /// Decision latch. Held across the whole claim: counter swaps,
    /// controller feed, and strategy swap — so windows have exactly one
    /// claimant and `mode` and the tree's actual strategy only ever
    /// change together.
    deciding: AtomicBool,
    flips: AtomicU64,
    epochs: AtomicU64,
}

/// The per-shard strategy controller of an adaptive
/// [`ShardedMap`](crate::ShardedMap). See the module docs.
pub struct AdaptiveController {
    cfg: AdaptiveConfig,
    preferred: Strategy,
    base: Instant,
    shards: Vec<ShardCtl>,
}

impl AdaptiveController {
    /// A controller for `shards` shards all starting on `preferred`,
    /// each probing with its own default [`ProbingController`].
    pub fn new(
        cfg: AdaptiveConfig,
        shards: usize,
        preferred: Strategy,
    ) -> Result<Self, ConfigError> {
        Self::with_factory(cfg, shards, preferred, None)
    }

    /// As [`AdaptiveController::new`], with per-shard controllers built
    /// by `factory` when one is supplied.
    pub fn with_factory(
        cfg: AdaptiveConfig,
        shards: usize,
        preferred: Strategy,
        factory: Option<&ControllerFactory>,
    ) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        cfg.validate()?;
        let strategies = threepath_core::ADAPTIVE_STRATEGIES;
        let Some(initial) = strategies.iter().position(|&s| s == preferred) else {
            return Err(ConfigError::AdaptiveStrategy(preferred));
        };
        let shards = (0..shards)
            .map(|s| {
                let ctl: Box<dyn Controller> = match factory {
                    Some(f) => f.build(s),
                    None => Box::new(ProbingController::new(strategies.len(), initial, cfg.probe)),
                };
                if ctl.arms() != strategies.len() {
                    return Err(ConfigError::ControllerArity {
                        arms: ctl.arms(),
                        expected: strategies.len(),
                    });
                }
                Ok(ShardCtl {
                    ctl,
                    window_ops: AtomicU64::new(0),
                    window_conflicts: AtomicU64::new(0),
                    window_other: AtomicU64::new(0),
                    win_start: AtomicU64::new(0),
                    lifetime_ops: AtomicU64::new(0),
                    lifetime_aborts: AtomicU64::new(0),
                    mode: AtomicU8::new(preferred.code()),
                    deciding: AtomicBool::new(false),
                    flips: AtomicU64::new(0),
                    epochs: AtomicU64::new(0),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AdaptiveController {
            cfg,
            preferred,
            base: Instant::now(),
            shards,
        })
    }

    /// The controller's tuning.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// The preferred (initial) strategy.
    pub fn preferred(&self) -> Strategy {
        self.preferred
    }

    /// The strategy shard `shard` currently runs. During probe passes
    /// this reads mid-excursion arms; [`settled_strategy_of`]
    /// (default controllers only) gives the settled decision.
    ///
    /// [`settled_strategy_of`]: AdaptiveController::settled_strategy_of
    pub fn strategy_of(&self, shard: usize) -> Strategy {
        Strategy::from_code(self.shards[shard].mode.load(Ordering::Acquire))
            .expect("mode atomic holds a valid code")
    }

    /// Every shard's current strategy, in shard order.
    pub fn strategies(&self) -> Vec<Strategy> {
        (0..self.shards.len()).map(|s| self.strategy_of(s)).collect()
    }

    /// Shard `shard`'s controller, for diagnostics (arm, switch count).
    pub fn controller_of(&self, shard: usize) -> &dyn Controller {
        self.shards[shard].ctl.as_ref()
    }

    /// The strategy shard `shard`'s controller has settled on — its
    /// incumbent, never a mid-probe excursion. This is the right value
    /// for "what did probing decide?" questions; the shard may
    /// transiently run the other strategy while a probe pass measures it.
    pub fn settled_strategy_of(&self, shard: usize) -> Strategy {
        threepath_core::ADAPTIVE_STRATEGIES[self.shards[shard].ctl.incumbent()]
    }

    /// How many times shard `shard` has switched strategy (probe
    /// excursions included).
    pub fn flips(&self, shard: usize) -> u64 {
        self.shards[shard].flips.load(Ordering::Relaxed)
    }

    /// Total strategy switches across all shards.
    pub fn total_flips(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.flips(s)).sum()
    }

    /// Windows shard `shard` has claimed and fed to its controller.
    pub fn epochs(&self, shard: usize) -> u64 {
        self.shards[shard].epochs.load(Ordering::Relaxed)
    }

    /// Lifetime `(completed, aborted)` attempt counts observed for shard
    /// `shard` — the per-shard load picture the controller decides from
    /// (completions across all paths, aborts of every kind and path).
    pub fn observed(&self, shard: usize) -> (u64, u64) {
        let c = &self.shards[shard];
        (
            c.lifetime_ops.load(Ordering::Relaxed),
            c.lifetime_aborts.load(Ordering::Relaxed),
        )
    }

    /// Counts still accumulating in shard `shard`'s open window, as
    /// `(completed, conflicts, other)` — together with the windows the
    /// controller observed this conserves every pushed count.
    pub fn pending(&self, shard: usize) -> (u64, u64, u64) {
        let c = &self.shards[shard];
        (
            c.window_ops.load(Ordering::Relaxed),
            c.window_conflicts.load(Ordering::Relaxed),
            c.window_other.load(Ordering::Relaxed),
        )
    }

    /// Accumulates a handle's windowed `(completed, conflict-abort,
    /// other-abort)` delta for `shard` and, when the shard's window
    /// crosses the epoch, claims it under the decision latch, feeds it
    /// to the shard's controller, and applies the controller's arm to
    /// `tree`. Called by [`ShardedHandle`](crate::ShardedHandle); `tree`
    /// must be the shard's own tree.
    pub(crate) fn record(
        &self,
        shard: usize,
        ops: u64,
        conflicts: u64,
        other: u64,
        tree: &ShardTree,
    ) {
        let ctl = &self.shards[shard];
        ctl.lifetime_ops.fetch_add(ops, Ordering::Relaxed);
        ctl.lifetime_aborts.fetch_add(conflicts + other, Ordering::Relaxed);
        ctl.window_conflicts.fetch_add(conflicts, Ordering::Relaxed);
        ctl.window_other.fetch_add(other, Ordering::Relaxed);
        let window = ctl.window_ops.fetch_add(ops, Ordering::Relaxed) + ops;
        if window < self.cfg.epoch_ops {
            return;
        }
        // Claim the window under the latch, and only under the latch:
        // a racing handle that also crossed the epoch simply bails here,
        // leaving its counts in the accumulators for the claimant. The
        // latch holder is the only thread that ever swaps the counters,
        // so no count can be swapped out and discarded.
        if ctl
            .deciding
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // Re-check under the latch: the claimant we raced may already
        // have drained this window.
        if ctl.window_ops.load(Ordering::Relaxed) < self.cfg.epoch_ops {
            ctl.deciding.store(false, Ordering::Release);
            return;
        }
        let ops_w = ctl.window_ops.swap(0, Ordering::Relaxed);
        let conflicts_w = ctl.window_conflicts.swap(0, Ordering::Relaxed);
        let other_w = ctl.window_other.swap(0, Ordering::Relaxed);
        let now = u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let started = ctl.win_start.swap(now, Ordering::Relaxed);
        let arm = ctl.ctl.arm();
        let w = Window {
            ops: ops_w,
            attempts: ops_w + conflicts_w + other_w,
            conflicts: conflicts_w,
            other: other_w,
            nanos: if self.cfg.wall_clock {
                now.saturating_sub(started)
            } else {
                0
            },
        };
        ctl.ctl.observe(arm, w);
        let next = threepath_core::ADAPTIVE_STRATEGIES[ctl.ctl.arm()];
        if next != self.strategy_of(shard) {
            tree.set_strategy(next)
                .expect("adaptive shards are built with runtime swapping enabled");
            ctl.mode.store(next.code(), Ordering::Release);
            ctl.flips.fetch_add(1, Ordering::Relaxed);
        }
        ctl.epochs.fetch_add(1, Ordering::Relaxed);
        ctl.deciding.store(false, Ordering::Release);
    }
}

impl fmt::Debug for AdaptiveController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdaptiveController")
            .field("cfg", &self.cfg)
            .field("preferred", &self.preferred)
            .field("strategies", &self.strategies())
            .field("flips", &self.total_flips())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ShardedConfig;

    fn adaptive_tree(strategy: Strategy) -> ShardTree {
        ShardTree::build(&ShardedConfig {
            strategy,
            adaptive: Some(AdaptiveConfig::default()),
            ..ShardedConfig::default()
        })
    }

    /// Deterministic tuning: score by ops/attempt, probe one window per
    /// arm, settle briefly.
    fn test_cfg(epoch_ops: u64) -> AdaptiveConfig {
        AdaptiveConfig {
            sample_every: 64,
            epoch_ops,
            probe: ProbeConfig {
                probe_windows: 1,
                settle_windows: 2,
                min_gain: 0.05,
            },
            wall_clock: false,
        }
    }

    fn ctl(preferred: Strategy, epoch_ops: u64) -> AdaptiveController {
        AdaptiveController::new(test_cfg(epoch_ops), 2, preferred).unwrap()
    }

    /// The arm index a strategy occupies in `ADAPTIVE_STRATEGIES`.
    fn arm_of(s: Strategy) -> usize {
        threepath_core::ADAPTIVE_STRATEGIES
            .iter()
            .position(|&a| a == s)
            .unwrap()
    }

    #[test]
    fn invalid_tuning_is_a_typed_error() {
        for bad_epoch in [0, 1, (1u64 << 30) + 1] {
            let bad = AdaptiveConfig {
                epoch_ops: bad_epoch,
                ..AdaptiveConfig::default()
            };
            assert_eq!(
                AdaptiveController::new(bad, 2, Strategy::Tle).unwrap_err(),
                ConfigError::ZeroAdaptiveInterval,
                "epoch_ops {bad_epoch} must be rejected"
            );
        }
        let bad = AdaptiveConfig {
            sample_every: 0,
            ..AdaptiveConfig::default()
        };
        assert_eq!(
            AdaptiveController::new(bad, 2, Strategy::Tle).unwrap_err(),
            ConfigError::ZeroAdaptiveInterval
        );
        let bad = AdaptiveConfig {
            probe: ProbeConfig {
                probe_windows: 0,
                ..ProbeConfig::default()
            },
            ..AdaptiveConfig::default()
        };
        assert!(matches!(
            AdaptiveController::new(bad, 2, Strategy::Tle).unwrap_err(),
            ConfigError::InvalidProbe(_)
        ));
        assert_eq!(
            AdaptiveController::new(AdaptiveConfig::default(), 0, Strategy::Tle).unwrap_err(),
            ConfigError::ZeroShards
        );
        assert_eq!(
            AdaptiveController::new(AdaptiveConfig::default(), 2, Strategy::NonHtm).unwrap_err(),
            ConfigError::AdaptiveStrategy(Strategy::NonHtm)
        );
    }

    #[test]
    fn factory_controllers_must_cover_every_strategy() {
        #[derive(Debug)]
        struct OneArm;
        impl Controller for OneArm {
            fn arms(&self) -> usize {
                1
            }
            fn arm(&self) -> usize {
                0
            }
            fn observe(&self, _: usize, _: Window) {}
            fn switches(&self) -> u64 {
                0
            }
        }
        let f = ControllerFactory::new(|_| Box::new(OneArm));
        assert_eq!(
            AdaptiveController::with_factory(AdaptiveConfig::default(), 2, Strategy::Tle, Some(&f))
                .unwrap_err(),
            ConfigError::ControllerArity { arms: 1, expected: 2 }
        );
    }

    #[test]
    fn probing_settles_on_the_strategy_that_measures_faster() {
        // TLE windows complete the same ops with far fewer attempts than
        // 3-path windows: probing must settle the shard on TLE,
        // regardless of which strategy it starts on.
        for preferred in [Strategy::ThreePath, Strategy::Tle] {
            let ctl = ctl(preferred, 100);
            let tree = adaptive_tree(preferred);
            for _ in 0..64 {
                let s = ctl.strategy_of(0);
                let (c, o) = if s == Strategy::Tle { (0, 50) } else { (400, 400) };
                ctl.record(0, 100, c, o, &tree);
            }
            assert_eq!(
                ctl.settled_strategy_of(0),
                Strategy::Tle,
                "from {preferred}: the cheap strategy wins the probe"
            );
            assert!(ctl.epochs(0) >= 3);
            // Shard 1 untouched.
            assert_eq!(ctl.strategy_of(1), preferred);
            assert_eq!(ctl.flips(1), 0);
        }
    }

    #[test]
    fn probing_recovers_when_the_fast_strategy_changes() {
        let ctl = ctl(Strategy::ThreePath, 100);
        let tree = adaptive_tree(Strategy::ThreePath);
        // Phase 1: TLE measures faster.
        for _ in 0..64 {
            let s = ctl.strategy_of(0);
            let (c, o) = if s == Strategy::Tle { (0, 50) } else { (400, 400) };
            ctl.record(0, 100, c, o, &tree);
        }
        assert_eq!(ctl.settled_strategy_of(0), Strategy::Tle);
        // Phase 2: contention arrives and 3-path measures faster.
        for _ in 0..64 {
            let s = ctl.strategy_of(0);
            let (c, o) = if s == Strategy::ThreePath { (50, 0) } else { (600, 300) };
            ctl.record(0, 100, c, o, &tree);
        }
        assert_eq!(ctl.settled_strategy_of(0), Strategy::ThreePath);
        assert!(ctl.flips(0) >= 2);
    }

    #[test]
    fn the_tree_and_the_mode_atomic_never_disagree() {
        let ctl = ctl(Strategy::ThreePath, 100);
        let tree = adaptive_tree(Strategy::ThreePath);
        for i in 0..256u64 {
            let bad = i % 3 == 0;
            let (c, o) = if bad { (300, 300) } else { (10, 10) };
            ctl.record(0, 100, c, o, &tree);
            assert_eq!(ctl.strategy_of(0), tree.strategy(), "iteration {i}");
        }
    }

    #[test]
    fn sub_epoch_windows_do_not_decide() {
        let ctl = ctl(Strategy::ThreePath, 1000);
        let tree = adaptive_tree(Strategy::ThreePath);
        for _ in 0..9 {
            ctl.record(0, 100, 0, 1000, &tree);
            assert_eq!(ctl.epochs(0), 0, "no window claimed before the epoch");
            assert_eq!(
                ctl.strategy_of(0),
                Strategy::ThreePath,
                "no decision before epoch"
            );
        }
        ctl.record(0, 100, 0, 1000, &tree);
        assert_eq!(ctl.epochs(0), 1);
    }

    /// Regression test for the window-claim race: every count pushed
    /// through `record` must land in exactly one claimed window or still
    /// be pending — none silently dropped. The pre-fix code swapped the
    /// window counters *before* racing for the decision latch, so a
    /// losing claimant would drain a partially-refilled window and throw
    /// it away.
    #[test]
    fn racing_window_claims_conserve_every_count() {
        #[derive(Debug, Default)]
        struct Recording {
            ops: AtomicU64,
            conflicts: AtomicU64,
            other: AtomicU64,
            windows: AtomicU64,
        }
        impl Controller for Recording {
            fn arms(&self) -> usize {
                threepath_core::ADAPTIVE_STRATEGIES.len()
            }
            fn arm(&self) -> usize {
                arm_of(Strategy::Tle)
            }
            fn observe(&self, _: usize, w: Window) {
                self.ops.fetch_add(w.ops, Ordering::Relaxed);
                self.conflicts.fetch_add(w.conflicts, Ordering::Relaxed);
                self.other.fetch_add(w.other, Ordering::Relaxed);
                self.windows.fetch_add(1, Ordering::Relaxed);
            }
            fn switches(&self) -> u64 {
                0
            }
        }
        let seen = Arc::new(Recording::default());
        let factory = {
            let seen = Arc::clone(&seen);
            ControllerFactory::new(move |_| {
                let seen = Arc::clone(&seen);
                #[derive(Debug)]
                struct Tee(Arc<Recording>);
                impl Controller for Tee {
                    fn arms(&self) -> usize {
                        self.0.arms()
                    }
                    fn arm(&self) -> usize {
                        self.0.arm()
                    }
                    fn observe(&self, arm: usize, w: Window) {
                        self.0.observe(arm, w);
                    }
                    fn switches(&self) -> u64 {
                        0
                    }
                }
                Box::new(Tee(seen))
            })
        };
        // A tiny epoch maximizes claim contention: nearly every push
        // crosses the threshold and races for the latch.
        let ctl = Arc::new(
            AdaptiveController::with_factory(
                test_cfg(4),
                1,
                Strategy::Tle,
                Some(&factory),
            )
            .unwrap(),
        );
        let tree = Arc::new(adaptive_tree(Strategy::Tle));
        const THREADS: u64 = 6;
        const PUSHES: u64 = 4_000;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let ctl = Arc::clone(&ctl);
                let tree = Arc::clone(&tree);
                s.spawn(move || {
                    for i in 0..PUSHES {
                        // Varied deltas so misattribution (not just loss)
                        // would also break the totals.
                        let ops = 1 + (i + t) % 3;
                        ctl.record(0, ops, t % 2, i % 2, &tree);
                    }
                });
            }
        });
        let (pend_ops, pend_c, pend_o) = ctl.pending(0);
        let total_ops: u64 = (0..THREADS)
            .map(|t| (0..PUSHES).map(|i| 1 + (i + t) % 3).sum::<u64>())
            .sum();
        let total_c: u64 = (0..THREADS).map(|t| PUSHES * (t % 2)).sum();
        let total_o: u64 = THREADS * (PUSHES / 2);
        assert_eq!(
            seen.ops.load(Ordering::Relaxed) + pend_ops,
            total_ops,
            "claimed + pending completions must equal pushed completions"
        );
        assert_eq!(seen.conflicts.load(Ordering::Relaxed) + pend_c, total_c);
        assert_eq!(seen.other.load(Ordering::Relaxed) + pend_o, total_o);
        assert_eq!(seen.windows.load(Ordering::Relaxed), ctl.epochs(0));
        assert!(ctl.epochs(0) > 0, "contended epochs were actually claimed");
    }
}
