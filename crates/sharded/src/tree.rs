//! One shard: a single template tree of either backend, and its
//! per-thread handle.

use std::sync::Arc;

use threepath_abtree::{AbTree, AbTreeConfig, AbTreeHandle};
use threepath_bst::{Bst, BstConfig, BstHandle};
use threepath_core::{BatchApply, BatchOp, PathKind, PathStats, Strategy, StrategySwapError};

use crate::map::ShardedConfig;

/// Which template tree backs each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBackend {
    /// External unbalanced BST (paper Section 6.1).
    Bst,
    /// Relaxed (a,b)-tree (paper Section 6.2).
    AbTree,
}

impl std::fmt::Display for ShardBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardBackend::Bst => "bst",
            ShardBackend::AbTree => "abtree",
        })
    }
}

/// A single template tree of either backend — one shard of a
/// [`ShardedMap`](crate::ShardedMap), also usable standalone as a uniform
/// front over [`Bst`]/[`AbTree`] (the workload harness drives unsharded
/// trials through it). Each instance owns its own HTM runtime and
/// reclamation domain (created by the tree constructor).
#[derive(Clone)]
pub enum ShardTree {
    /// External unbalanced BST.
    Bst(Arc<Bst>),
    /// Relaxed (a,b)-tree.
    AbTree(Arc<AbTree>),
}

impl ShardTree {
    /// Builds one tree from the per-tree fields of `cfg` (`backend`,
    /// `strategy`, `htm`, `reclaim`, `search_outside_txn`, `snzi`, and
    /// whether `adaptive` is configured); `shards`, `key_space`, `router`
    /// and per-shard overrides are partitioning concerns and ignored —
    /// use [`ShardTree::build_shard`] to honour them.
    pub fn build(cfg: &ShardedConfig) -> ShardTree {
        Self::build_with(cfg, cfg.htm.clone())
    }

    /// Builds the tree for shard `shard` of `cfg`, applying any per-shard
    /// HTM override (`cfg.htm_overrides`).
    pub fn build_shard(cfg: &ShardedConfig, shard: usize) -> ShardTree {
        Self::build_with(cfg, cfg.htm_for(shard))
    }

    fn build_with(cfg: &ShardedConfig, htm: threepath_htm::HtmConfig) -> ShardTree {
        let adaptive = cfg.adaptive.is_some();
        match cfg.backend {
            ShardBackend::Bst => ShardTree::Bst(Arc::new(Bst::with_config(BstConfig {
                strategy: cfg.strategy,
                htm,
                limits: cfg.limits,
                reclaim: cfg.reclaim,
                search_outside_txn: cfg.search_outside_txn,
                snzi: cfg.snzi,
                adaptive,
                pool: cfg.pool,
                budget: cfg.budget.clone(),
                read_path: cfg.read_path,
                scan_path: cfg.scan_path,
                snapshot_scans: cfg.snapshot_scans,
                admission: cfg.admission,
                read_probe: cfg.read_probe.clone(),
                admission_probe: cfg.admission_probe.clone(),
                batched: cfg.batched,
            }))),
            ShardBackend::AbTree => ShardTree::AbTree(Arc::new(AbTree::with_config(AbTreeConfig {
                strategy: cfg.strategy,
                htm,
                limits: cfg.limits,
                reclaim: cfg.reclaim,
                search_outside_txn: cfg.search_outside_txn,
                snzi: cfg.snzi,
                adaptive,
                pool: cfg.pool,
                budget: cfg.budget.clone(),
                read_path: cfg.read_path,
                scan_path: cfg.scan_path,
                snapshot_scans: cfg.snapshot_scans,
                admission: cfg.admission,
                read_probe: cfg.read_probe.clone(),
                admission_probe: cfg.admission_probe.clone(),
                batched: cfg.batched,
                ..AbTreeConfig::default()
            }))),
        }
    }

    /// Registers the calling thread and returns an operation handle.
    pub fn handle(&self) -> ShardHandle {
        match self {
            ShardTree::Bst(t) => ShardHandle::Bst(t.handle()),
            ShardTree::AbTree(t) => ShardHandle::AbTree(t.handle()),
        }
    }

    /// The tree's current execution strategy.
    pub fn strategy(&self) -> Strategy {
        match self {
            ShardTree::Bst(t) => t.strategy(),
            ShardTree::AbTree(t) => t.strategy(),
        }
    }

    /// Whether the tree was built with the batch entry point enabled.
    pub fn is_batched(&self) -> bool {
        match self {
            ShardTree::Bst(t) => t.is_batched(),
            ShardTree::AbTree(t) => t.is_batched(),
        }
    }

    /// Swaps the execution strategy at runtime (adaptive trees only; see
    /// [`threepath_core::ExecCtx::set_strategy`]).
    pub fn set_strategy(&self, strategy: Strategy) -> Result<(), StrategySwapError> {
        match self {
            ShardTree::Bst(t) => t.set_strategy(strategy),
            ShardTree::AbTree(t) => t.set_strategy(strategy),
        }
    }

    /// The attempt budgets currently in effect (fixed, adaptive, or the
    /// paper defaults).
    pub fn limits(&self) -> threepath_core::PathLimits {
        match self {
            ShardTree::Bst(t) => t.limits(),
            ShardTree::AbTree(t) => t.limits(),
        }
    }

    /// Node-pool counters folded into the tree's domain so far.
    pub fn pool_stats(&self) -> threepath_reclaim::PoolStats {
        match self {
            ShardTree::Bst(t) => t.pool_stats(),
            ShardTree::AbTree(t) => t.pool_stats(),
        }
    }

    /// Sum of all keys (quiescent).
    pub fn key_sum(&self) -> u128 {
        match self {
            ShardTree::Bst(t) => t.key_sum(),
            ShardTree::AbTree(t) => t.key_sum(),
        }
    }

    /// Number of keys (quiescent).
    pub fn len(&self) -> usize {
        match self {
            ShardTree::Bst(t) => t.len(),
            ShardTree::AbTree(t) => t.len(),
        }
    }

    /// Whether the tree is empty (quiescent).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All pairs in ascending key order (quiescent).
    pub fn collect(&self) -> Vec<(u64, u64)> {
        match self {
            ShardTree::Bst(t) => t.collect(),
            ShardTree::AbTree(t) => t.collect(),
        }
    }

    /// Structural validation (quiescent). Returns an error description on
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ShardTree::Bst(t) => t.validate().map(|_| ()),
            ShardTree::AbTree(t) => t.validate().map(|_| ()),
        }
    }
}

impl std::fmt::Debug for ShardTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardTree::Bst(t) => t.fmt(f),
            ShardTree::AbTree(t) => t.fmt(f),
        }
    }
}

/// A per-thread handle to one [`ShardTree`].
pub enum ShardHandle {
    /// BST handle.
    Bst(BstHandle),
    /// (a,b)-tree handle.
    AbTree(AbTreeHandle),
}

impl ShardHandle {
    /// Inserts a pair, returning the previous value.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        match self {
            ShardHandle::Bst(h) => h.insert(key, value),
            ShardHandle::AbTree(h) => h.insert(key, value),
        }
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        match self {
            ShardHandle::Bst(h) => h.remove(key),
            ShardHandle::AbTree(h) => h.remove(key),
        }
    }

    /// Looks up a key.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        match self {
            ShardHandle::Bst(h) => h.get(key),
            ShardHandle::AbTree(h) => h.get(key),
        }
    }

    /// Range query over `[lo, hi)` (an atomic snapshot, as on the
    /// underlying tree).
    pub fn range_query(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        match self {
            ShardHandle::Bst(h) => h.range_query(lo, hi),
            ShardHandle::AbTree(h) => h.range_query(lo, hi),
        }
    }

    /// Applies a coalesced plan in submission order in one fast-path
    /// transaction or one serialized section (see the backend trees'
    /// `run_batch`). Requires a batched tree.
    pub fn run_batch(&mut self, ops: &[BatchOp]) -> (Vec<Option<u64>>, PathKind) {
        match self {
            ShardHandle::Bst(h) => h.run_batch(ops),
            ShardHandle::AbTree(h) => h.run_batch(ops),
        }
    }

    /// [`Self::run_batch`] with a flat-combining hook, invoked only when
    /// the batch escalates to the serialized section (while this thread
    /// holds the fallback lock).
    pub fn run_batch_with(
        &mut self,
        ops: &[BatchOp],
        combine: impl FnOnce(&mut dyn BatchApply),
    ) -> (Vec<Option<u64>>, PathKind) {
        match self {
            ShardHandle::Bst(h) => h.run_batch_with(ops, combine),
            ShardHandle::AbTree(h) => h.run_batch_with(ops, combine),
        }
    }

    /// Path statistics accumulated by this handle.
    pub fn stats(&self) -> &PathStats {
        match self {
            ShardHandle::Bst(h) => h.stats(),
            ShardHandle::AbTree(h) => h.stats(),
        }
    }
}
