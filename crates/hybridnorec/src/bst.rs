//! The unbalanced external BST implemented directly on Hybrid NOrec: every
//! operation is one TM transaction over sequential BST code (paper
//! Section 7.3's methodology, with the TM inlined into the tree code).

use std::sync::{Arc, Mutex};

use threepath_htm::{Abort, HtmConfig, HtmRuntime, TxCell};

use crate::norec::{NorecTm, TmAccess};

const SENT1: u64 = u64::MAX - 1;
const SENT2: u64 = u64::MAX;

/// Largest storable key.
pub const MAX_KEY: u64 = u64::MAX - 2;

struct Node {
    key: u64,
    is_leaf: bool,
    value: TxCell,
    children: [TxCell; 2],
}

impl Node {
    fn leaf(key: u64, value: u64) -> Node {
        Node {
            key,
            is_leaf: true,
            value: TxCell::new(value),
            children: [TxCell::new(0), TxCell::new(0)],
        }
    }
    fn internal(key: u64, l: *mut Node, r: *mut Node) -> Node {
        Node {
            key,
            is_leaf: false,
            value: TxCell::new(0),
            children: [TxCell::new(l as u64), TxCell::new(r as u64)],
        }
    }
}

fn dir_of(key: u64, node_key: u64) -> usize {
    usize::from(key >= node_key)
}

/// Configuration for [`HnBst`].
#[derive(Debug, Clone)]
pub struct HnBstConfig {
    /// Simulated-HTM parameters.
    pub htm: HtmConfig,
    /// Hardware attempts before the NOrec software path.
    pub hw_attempts: u32,
}

impl Default for HnBstConfig {
    fn default() -> Self {
        HnBstConfig {
            htm: HtmConfig::default(),
            hw_attempts: 10,
        }
    }
}

/// A BST whose operations run as Hybrid NOrec transactions.
pub struct HnBst {
    tm: NorecTm,
    root: *mut Node,
    graveyard: Mutex<Vec<*mut Node>>,
}

// SAFETY: all shared mutation goes through the TM.
unsafe impl Send for HnBst {}
unsafe impl Sync for HnBst {}

impl HnBst {
    /// A tree with default configuration.
    pub fn new() -> Self {
        Self::with_config(HnBstConfig::default())
    }

    /// A tree with the given configuration.
    pub fn with_config(cfg: HnBstConfig) -> Self {
        let rt = Arc::new(HtmRuntime::new(cfg.htm.clone()));
        let tm = NorecTm::new(rt, cfg.hw_attempts);
        let l1 = Box::into_raw(Box::new(Node::leaf(SENT1, 0)));
        let l2 = Box::into_raw(Box::new(Node::leaf(SENT2, 0)));
        let root = Box::into_raw(Box::new(Node::internal(SENT2, l1, l2)));
        HnBst {
            tm,
            root,
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// Registers the calling thread.
    pub fn handle(self: &Arc<Self>) -> HnBstHandle {
        HnBstHandle {
            th: self.tm.runtime().register_thread(),
            tree: Arc::clone(self),
            graveyard: Vec::new(),
        }
    }

    /// Sum of user keys; quiescent only.
    pub fn key_sum_quiescent(&self) -> u128 {
        fn rec(n: *mut Node, acc: &mut u128) {
            // SAFETY: quiescent per contract.
            let node = unsafe { &*n };
            if node.is_leaf {
                if node.key < SENT1 {
                    *acc += node.key as u128;
                }
            } else {
                rec(node.children[0].load_plain() as *mut Node, acc);
                rec(node.children[1].load_plain() as *mut Node, acc);
            }
        }
        let mut acc = 0;
        rec(self.root, &mut acc);
        acc
    }
}

impl Default for HnBst {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for HnBst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnBst").field("tm", &self.tm).finish()
    }
}

impl Drop for HnBst {
    fn drop(&mut self) {
        unsafe fn free_rec(n: *mut Node) {
            let node = unsafe { &*n };
            if !node.is_leaf {
                unsafe {
                    free_rec(node.children[0].load_plain() as *mut Node);
                    free_rec(node.children[1].load_plain() as *mut Node);
                }
            }
            drop(unsafe { Box::from_raw(n) });
        }
        // SAFETY: exclusive access; graveyard nodes are unreachable from
        // the root (no double free).
        unsafe { free_rec(self.root) };
        for n in self.graveyard.lock().unwrap().drain(..) {
            drop(unsafe { Box::from_raw(n) });
        }
    }
}

struct Found {
    gp: *mut Node,
    gp_dir: usize,
    p: *mut Node,
    p_dir: usize,
    l: *mut Node,
}

fn search(acc: &mut dyn TmAccess, root: *mut Node, key: u64) -> Result<Found, Abort> {
    // SAFETY: nodes are only freed at tree drop (graveyard discipline), so
    // every pointer read through the TM remains dereferenceable.
    let mut gp = std::ptr::null_mut();
    let mut gp_dir = 0usize;
    let mut p = root;
    let mut p_dir = dir_of(key, unsafe { &*root }.key);
    let mut l = acc.read(&unsafe { &*p }.children[p_dir])? as *mut Node;
    while !unsafe { &*l }.is_leaf {
        gp = p;
        gp_dir = p_dir;
        p = l;
        p_dir = dir_of(key, unsafe { &*p }.key);
        l = acc.read(&unsafe { &*p }.children[p_dir])? as *mut Node;
    }
    Ok(Found {
        gp,
        gp_dir,
        p,
        p_dir,
        l,
    })
}

/// A per-thread handle to an [`HnBst`].
pub struct HnBstHandle {
    tree: Arc<HnBst>,
    th: threepath_htm::TxThread,
    graveyard: Vec<*mut Node>,
}

impl HnBstHandle {
    /// Inserts or updates, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `key > MAX_KEY`.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        assert!(key <= MAX_KEY);
        let tree = &self.tree;
        let root = tree.root;
        // New nodes are pre-allocated outside the transaction and reused
        // across attempts; freed if ultimately unused.
        let nl = Box::into_raw(Box::new(Node::leaf(key, value)));
        let ni = Box::into_raw(Box::new(Node::internal(0, std::ptr::null_mut(), std::ptr::null_mut())));
        let used = tree.tm.execute(&mut self.th, |acc| {
            let f = search(acc, root, key)?;
            let l = unsafe { &*f.l };
            let p = unsafe { &*f.p };
            if l.key == key {
                let old = acc.read(&l.value)?;
                acc.write(&l.value, value)?;
                Ok(Some(old))
            } else {
                // Configure the pre-allocated internal node for this
                // attempt (safe: it is unpublished until the write below).
                let internal = unsafe { &mut *ni };
                if key < l.key {
                    internal.key = l.key;
                    // SAFETY: unpublished.
                    unsafe {
                        internal.children[0].store_plain(nl as u64);
                        internal.children[1].store_plain(f.l as u64);
                    }
                } else {
                    internal.key = key;
                    unsafe {
                        internal.children[0].store_plain(f.l as u64);
                        internal.children[1].store_plain(nl as u64);
                    }
                }
                acc.write(&p.children[f.p_dir], ni as u64)?;
                Ok(None)
            }
        });
        if used.is_some() {
            // Updated in place: the pre-allocated nodes are unused.
            // SAFETY: never published.
            unsafe {
                drop(Box::from_raw(nl));
                drop(Box::from_raw(ni));
            }
        }
        used
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        if key > MAX_KEY {
            return None;
        }
        let tree = &self.tree;
        let root = tree.root;
        let removed = tree.tm.execute(&mut self.th, |acc| {
            let f = search(acc, root, key)?;
            let l = unsafe { &*f.l };
            if l.key != key {
                return Ok(None);
            }
            let gp = unsafe { &*f.gp };
            let p = unsafe { &*f.p };
            let sibling = acc.read(&p.children[1 - f.p_dir])?;
            let old = acc.read(&l.value)?;
            acc.write(&gp.children[f.gp_dir], sibling)?;
            Ok(Some((old, f.p, f.l)))
        });
        match removed {
            Some((old, p, l)) => {
                self.graveyard.push(p);
                self.graveyard.push(l);
                Some(old)
            }
            None => None,
        }
    }

    /// Looks up a key.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        if key > MAX_KEY {
            return None;
        }
        let tree = &self.tree;
        let root = tree.root;
        tree.tm.execute(&mut self.th, |acc| {
            let f = search(acc, root, key)?;
            let l = unsafe { &*f.l };
            if l.key == key {
                Ok(Some(acc.read(&l.value)?))
            } else {
                Ok(None)
            }
        })
    }
}

impl Drop for HnBstHandle {
    fn drop(&mut self) {
        self.tree
            .graveyard
            .lock()
            .unwrap()
            .append(&mut self.graveyard);
    }
}

impl std::fmt::Debug for HnBstHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HnBstHandle").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use threepath_htm::SplitMix64;

    #[test]
    fn oracle_sequential() {
        let tree = Arc::new(HnBst::new());
        let mut h = tree.handle();
        let mut oracle = BTreeMap::new();
        let mut rng = SplitMix64::new(11);
        for i in 0..3000u64 {
            let k = rng.next_below(200);
            match rng.next_below(3) {
                0 => assert_eq!(h.insert(k, i), oracle.insert(k, i)),
                1 => assert_eq!(h.remove(k), oracle.remove(&k)),
                _ => assert_eq!(h.get(k), oracle.get(&k).copied()),
            }
        }
        drop(h);
        let sum: u128 = oracle.keys().map(|k| *k as u128).sum();
        assert_eq!(tree.key_sum_quiescent(), sum);
    }

    #[test]
    fn oracle_software_only() {
        // hw_attempts = 0: pure NOrec.
        let tree = Arc::new(HnBst::with_config(HnBstConfig {
            hw_attempts: 0,
            ..HnBstConfig::default()
        }));
        let mut h = tree.handle();
        let mut oracle = BTreeMap::new();
        let mut rng = SplitMix64::new(13);
        for i in 0..1500u64 {
            let k = rng.next_below(128);
            if rng.next_below(2) == 0 {
                assert_eq!(h.insert(k, i), oracle.insert(k, i));
            } else {
                assert_eq!(h.remove(k), oracle.remove(&k));
            }
        }
    }

    #[test]
    fn concurrent_keysum() {
        use std::sync::atomic::{AtomicI64, Ordering};
        let tree = Arc::new(HnBst::new());
        let delta = Arc::new(AtomicI64::new(0));
        std::thread::scope(|s| {
            for t in 0..4 {
                let tree = tree.clone();
                let delta = delta.clone();
                s.spawn(move || {
                    let mut h = tree.handle();
                    let mut rng = SplitMix64::new(100 + t);
                    let mut local = 0i64;
                    for i in 0..1500u64 {
                        let k = rng.next_below(256);
                        if rng.next_below(2) == 0 {
                            if h.insert(k, i).is_none() {
                                local += k as i64;
                            }
                        } else if h.remove(k).is_some() {
                            local -= k as i64;
                        }
                    }
                    delta.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            tree.key_sum_quiescent() as i128,
            delta.load(Ordering::Relaxed) as i128
        );
    }
}
