//! The Hybrid NOrec TM engine.

use std::sync::Arc;

use threepath_htm::{codes, Abort, CachePadded, HtmRuntime, TxCell, TxThread, Txn};

/// Uniform transactional-memory access used by code that runs on either
/// NOrec path.
pub trait TmAccess {
    /// Transactional read.
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort>;
    /// Transactional write.
    fn write(&mut self, cell: &TxCell, v: u64) -> Result<(), Abort>;

    /// Pointer read (non-generic so the trait stays dyn-compatible).
    fn read_node(&mut self, cell: &TxCell) -> Result<usize, Abort> {
        self.read(cell).map(|v| v as usize)
    }
}

/// The shared TM state: the global sequence lock (even = free, odd = a
/// software commit is writing back).
pub struct NorecTm {
    rt: Arc<HtmRuntime>,
    gsl: CachePadded<TxCell>,
    hw_attempts: u32,
}

impl NorecTm {
    /// Creates a TM over the given HTM runtime.
    pub fn new(rt: Arc<HtmRuntime>, hw_attempts: u32) -> Self {
        NorecTm {
            rt,
            gsl: CachePadded::new(TxCell::new(0)),
            hw_attempts,
        }
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &Arc<HtmRuntime> {
        &self.rt
    }

    /// Runs `body` as an atomic transaction: up to `hw_attempts` hardware
    /// tries, then the NOrec software path (which retries internally until
    /// it commits). `body` must be repeatable.
    pub fn execute<T>(
        &self,
        th: &mut TxThread,
        mut body: impl FnMut(&mut dyn TmAccess) -> Result<T, Abort>,
    ) -> T {
        // Hardware path.
        for _ in 0..self.hw_attempts {
            let r = self.rt.attempt(th, |tx| {
                let gsl_now = tx.read(&self.gsl)?;
                if gsl_now & 1 == 1 {
                    return Err(tx.abort(codes::STM_COMMITTING));
                }
                let mut acc = HwTm {
                    tx,
                    wrote: false,
                };
                let out = body(&mut acc)?;
                if acc.wrote {
                    // The hybrid's hotspot: every updating hardware
                    // transaction publishes a new clock value.
                    acc.tx.write(&self.gsl, gsl_now + 2)?;
                }
                Ok(out)
            });
            if let Ok(v) = r {
                return v;
            }
        }
        // Software path (NOrec).
        'restart: loop {
            let mut acc = SwTm::begin(&self.rt, &self.gsl);
            match body(&mut acc) {
                Ok(v) => {
                    if acc.commit() {
                        return v;
                    }
                    continue 'restart;
                }
                Err(_) => continue 'restart,
            }
        }
    }
}

impl std::fmt::Debug for NorecTm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NorecTm")
            .field("hw_attempts", &self.hw_attempts)
            .finish()
    }
}

/// Hardware-path access: plain transactional reads/writes plus a dirty
/// flag.
struct HwTm<'a, 'b> {
    tx: &'a mut Txn<'b>,
    wrote: bool,
}

impl TmAccess for HwTm<'_, '_> {
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        self.tx.read(cell)
    }
    fn write(&mut self, cell: &TxCell, v: u64) -> Result<(), Abort> {
        self.wrote = true;
        self.tx.write(cell, v)
    }
}

/// Software-path access: NOrec value-based validation.
struct SwTm<'a> {
    rt: &'a HtmRuntime,
    gsl: &'a TxCell,
    rv: u64,
    reads: Vec<(usize, u64)>,
    writes: Vec<(usize, u64)>,
}

impl<'a> SwTm<'a> {
    fn begin(rt: &'a HtmRuntime, gsl: &'a TxCell) -> Self {
        let rv = Self::wait_even(rt, gsl);
        SwTm {
            rt,
            gsl,
            rv,
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    fn wait_even(rt: &HtmRuntime, gsl: &TxCell) -> u64 {
        loop {
            let v = gsl.load_direct(rt);
            if v & 1 == 0 {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Value-based revalidation of the whole read log (NOrec's hallmark
    /// cost). Returns the new snapshot time, or `None` if a logged value
    /// changed (the transaction must restart).
    fn revalidate(&mut self) -> Option<u64> {
        loop {
            let time = Self::wait_even(self.rt, self.gsl);
            let mut ok = true;
            for (addr, val) in &self.reads {
                // SAFETY: addresses were captured from live `TxCell`s; the
                // graveyard discipline keeps unlinked nodes allocated.
                let cell = unsafe { &*(*addr as *const TxCell) };
                if cell.load_direct(self.rt) != *val {
                    ok = false;
                    break;
                }
            }
            if !ok {
                return None;
            }
            if self.gsl.load_direct(self.rt) == time {
                return Some(time);
            }
        }
    }

    fn commit(&mut self) -> bool {
        if self.writes.is_empty() {
            return true;
        }
        // Acquire the sequence lock at our snapshot time (or revalidate and
        // retry at a newer one).
        loop {
            match self.gsl.cas_direct(self.rt, self.rv, self.rv + 1) {
                Ok(_) => break,
                Err(_) => match self.revalidate() {
                    Some(t) => self.rv = t,
                    None => return false,
                },
            }
        }
        for (addr, val) in &self.writes {
            // SAFETY: as in `revalidate`.
            let cell = unsafe { &*(*addr as *const TxCell) };
            cell.store_direct(self.rt, *val);
        }
        self.gsl.store_direct(self.rt, self.rv + 2);
        true
    }
}

impl TmAccess for SwTm<'_> {
    fn read(&mut self, cell: &TxCell) -> Result<u64, Abort> {
        let addr = cell.addr_for_log();
        for (a, v) in self.writes.iter().rev() {
            if *a == addr {
                return Ok(*v);
            }
        }
        loop {
            let v = cell.load_direct(self.rt);
            if self.gsl.load_direct(self.rt) == self.rv {
                self.reads.push((addr, v));
                return Ok(v);
            }
            match self.revalidate() {
                Some(t) => self.rv = t, // our log still holds; reread
                None => return Err(Abort::explicit(codes::VALIDATION)),
            }
        }
    }

    fn write(&mut self, cell: &TxCell, v: u64) -> Result<(), Abort> {
        let addr = cell.addr_for_log();
        for e in self.writes.iter_mut().rev() {
            if e.0 == addr {
                e.1 = v;
                return Ok(());
            }
        }
        self.writes.push((addr, v));
        Ok(())
    }
}

/// Address helper (the TM logs cells by address).
trait CellAddr {
    fn addr_for_log(&self) -> usize;
}

impl CellAddr for TxCell {
    fn addr_for_log(&self) -> usize {
        self as *const TxCell as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use threepath_htm::HtmConfig;

    fn tm(hw_attempts: u32, spurious: f64) -> NorecTm {
        let rt = Arc::new(HtmRuntime::new(
            HtmConfig::default().with_spurious(spurious),
        ));
        NorecTm::new(rt, hw_attempts)
    }

    #[test]
    fn execute_on_hardware_path() {
        let tm = tm(5, 0.0);
        let mut th = tm.runtime().register_thread();
        let c = TxCell::new(1);
        let got = tm.execute(&mut th, |acc| {
            let v = acc.read(&c)?;
            acc.write(&c, v + 1)?;
            Ok(v)
        });
        assert_eq!(got, 1);
        assert_eq!(c.load_direct(tm.runtime()), 2);
    }

    #[test]
    fn execute_on_software_path() {
        // All hardware attempts abort spuriously: NOrec must carry it.
        let tm = tm(3, 1.0);
        let mut th = tm.runtime().register_thread();
        let c = TxCell::new(10);
        for _ in 0..20 {
            tm.execute(&mut th, |acc| {
                let v = acc.read(&c)?;
                acc.write(&c, v + 1)
            });
        }
        assert_eq!(c.load_direct(tm.runtime()), 30);
    }

    #[test]
    fn software_read_own_writes() {
        let tm = tm(0, 0.0);
        let mut th = tm.runtime().register_thread();
        let c = TxCell::new(5);
        let got = tm.execute(&mut th, |acc| {
            acc.write(&c, 9)?;
            acc.read(&c)
        });
        assert_eq!(got, 9);
    }

    #[test]
    fn concurrent_counter_mixed_paths() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Half the transactions abort to software: increments must still
        // all land.
        let tm = Arc::new(tm(2, 0.5));
        let c = Arc::new(CachePadded::new(TxCell::new(0)));
        let done = Arc::new(AtomicU64::new(0));
        let per = 400;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let tm = tm.clone();
                let c = c.clone();
                let done = done.clone();
                s.spawn(move || {
                    let mut th = tm.runtime().register_thread();
                    for _ in 0..per {
                        tm.execute(&mut th, |acc| {
                            let v = acc.read(&c)?;
                            acc.write(&c, v + 1)
                        });
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 4 * per);
        assert_eq!(c.load_direct(tm.runtime()), 4 * per);
    }
}
