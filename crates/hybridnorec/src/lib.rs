//! Hybrid NOrec transactional memory and a BST built on it — the paper's
//! Section 7.3 / Figure 17 comparison point.
//!
//! Hybrid NOrec (Dalessandro et al., ASPLOS 2011) combines best-effort
//! hardware transactions with the NOrec software TM (a single global
//! sequence lock plus value-based read-set validation):
//!
//! * **hardware path** — the operation runs in one hardware transaction
//!   that *subscribes* to the global sequence lock (aborting if a software
//!   commit is in flight) and, if it wrote anything, bumps the lock at
//!   commit so software transactions revalidate. That bump is the
//!   scalability trap the paper highlights: every updating hardware
//!   transaction conflicts with every other on the clock's cache line,
//!   regardless of what data they touch;
//! * **software path** — NOrec: buffered writes, value-logged reads
//!   revalidated whenever the global clock moves, commit under the
//!   sequence lock.
//!
//! As in the paper's experiment, the TM is compiled directly into the BST
//! (no function-call indirection), which is *charitable* toward the hybrid.
//! Unlinked nodes are kept in a per-handle graveyard until the tree drops —
//! the same leak-until-teardown discipline research hybrid-TM prototypes
//! use — so this baseline pays no reclamation cost at all.
//!
//! # Example
//!
//! ```
//! use threepath_hybridnorec::HnBst;
//! use std::sync::Arc;
//!
//! let tree = Arc::new(HnBst::new());
//! let mut h = tree.handle();
//! assert_eq!(h.insert(1, 10), None);
//! assert_eq!(h.get(1), Some(10));
//! assert_eq!(h.remove(1), Some(10));
//! ```

#![warn(missing_docs)]

mod bst;
mod norec;

pub use bst::{HnBst, HnBstConfig, HnBstHandle};
pub use norec::{NorecTm, TmAccess};
