//! Property-based recovery oracle: arbitrary update sequences against a
//! `BTreeMap`, with the log cut at **every byte boundary** of the tail
//! record. Recovery of a cut log must equal the oracle restricted to the
//! fully-framed records — never a partial record's effects, never an
//! error.

use std::collections::BTreeMap;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use threepath_core::BatchOp;
use threepath_persist::{recover_shard, FsyncPolicy, PersistConfig, ShardWal};

fn test_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "threepath-oracle-{tag}-{}-{n}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn wal_file(dir: &Path) -> PathBuf {
    dir.join("shard-0.wal")
}

/// One logged plan: a small group of update operations.
fn plan_strategy(key_range: u64) -> impl Strategy<Value = Vec<BatchOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..key_range, any::<u64>()).prop_map(|(k, v)| BatchOp::Insert(k, v)),
            (0..key_range).prop_map(BatchOp::Remove),
        ],
        1..5,
    )
}

fn apply(oracle: &mut BTreeMap<u64, u64>, plan: &[BatchOp]) {
    for op in plan {
        match *op {
            BatchOp::Insert(k, v) => {
                oracle.insert(k, v);
            }
            BatchOp::Remove(k) => {
                oracle.remove(&k);
            }
            BatchOp::Get(_) => unreachable!(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_byte_cut_of_the_tail_recovers_the_framed_prefix(
        plans in proptest::collection::vec(plan_strategy(32), 2..12),
    ) {
        let dir = test_dir("cut");
        let cfg = PersistConfig {
            fsync: FsyncPolicy::Never,
            snapshot_every: None,
            ..PersistConfig::new(&dir)
        };
        let mut wal = ShardWal::create(&cfg, 0).unwrap();
        let mut sizes = vec![fs::metadata(wal_file(&dir)).unwrap().len()];
        let mut oracle = BTreeMap::new();
        let mut states: Vec<Vec<(u64, u64)>> = vec![vec![]];
        for plan in &plans {
            wal.append(plan).unwrap();
            apply(&mut oracle, plan);
            // Flush the File's userspace buffer... write_all is unbuffered
            // on std::fs::File, so metadata reflects every append.
            sizes.push(fs::metadata(wal_file(&dir)).unwrap().len());
            states.push(oracle.iter().map(|(&k, &v)| (k, v)).collect());
        }
        drop(wal);
        let full = fs::read(wal_file(&dir)).unwrap();
        let tail_start = sizes[sizes.len() - 2];

        // Cut at every byte boundary of the tail record (plus the exact
        // end): the recovered state must equal the oracle restricted to
        // records that are fully framed at that cut.
        for cut in tail_start..=*sizes.last().unwrap() {
            let f = OpenOptions::new().write(true).open(wal_file(&dir)).unwrap();
            f.set_len(cut).unwrap();
            drop(f);
            let r = recover_shard(&cfg, 0).unwrap();
            let framed = sizes.iter().rposition(|&s| s <= cut).unwrap();
            prop_assert_eq!(
                &r.pairs, &states[framed],
                "cut at byte {} (tail starts at {})", cut, tail_start
            );
            prop_assert_eq!(r.report.bytes_truncated, cut - sizes[framed]);
            // Restore the full image for the next cut.
            fs::write(wal_file(&dir), &full).unwrap();
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_after_clean_shutdown_equals_the_oracle(
        plans in proptest::collection::vec(plan_strategy(64), 1..40),
        snapshot_every in prop_oneof![Just(None), Just(Some(5u64))],
    ) {
        let dir = test_dir("clean");
        let cfg = PersistConfig {
            fsync: FsyncPolicy::EveryN(4),
            snapshot_every,
            ..PersistConfig::new(&dir)
        };
        let mut wal = ShardWal::create(&cfg, 0).unwrap();
        let mut oracle = BTreeMap::new();
        for plan in &plans {
            wal.append(plan).unwrap();
            apply(&mut oracle, plan);
            if wal.snapshot_due() {
                let pairs: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
                wal.install_snapshot(&pairs).unwrap();
            }
        }
        drop(wal);
        let r = recover_shard(&cfg, 0).unwrap();
        let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(r.pairs, want);
        if let Some(n) = snapshot_every {
            // The snapshot bounded the replay.
            prop_assert!(r.report.records_replayed < n + 1);
        }
        fs::remove_dir_all(&dir).ok();
    }
}
