//! The per-shard write-ahead log: framing, the writer, fsync policies,
//! deterministic fault injection, and shard recovery.
//!
//! # Record framing
//!
//! After a 24-byte header, the log is a sequence of frames
//! `[len: u32][crc: u32][payload]`; `crc` is the CRC-32C of the payload
//! and `len` its byte length. The payload is `[seq: u64][count: u32]`
//! followed by `count` update operations (`0 key value` for an insert,
//! `1 key` for a remove). A crashed append leaves a *prefix* of a frame
//! (appends are single sequential `write_all` calls), which recovery
//! detects as a short read or checksum mismatch and truncates.
//!
//! # Write-ahead ordering
//!
//! The sharded layer appends a plan's record **before** executing the
//! plan, holding the shard's log lock across both, so the log's record
//! order equals the shard's commit order. A record whose plan never
//! executed (crash between append and apply) replays as a fully-applied
//! batch — allowed, since the plan had been accepted and would have
//! committed; what can never happen is a *half*-applied batch, because
//! a batch is one record and records are atomic under the checksum.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use threepath_core::BatchOp;

use crate::snapshot::{read_snapshot, snapshot_path, write_snapshot};
use crate::{crc32c, io_err, sync_dir, PersistError, FORMAT_VERSION};

const MAGIC: &[u8; 4] = b"3PWL";
/// magic + version + shard + base_seq + crc
const HEADER_LEN: u64 = 4 + 4 + 4 + 8 + 4;
/// seq + count
const MIN_PAYLOAD: u32 = 8 + 4;
/// Upper bound on a sane record; larger lengths are treated as tail
/// damage (a torn length word can decode to anything).
const MAX_PAYLOAD: u32 = 1 << 26;

/// When the log writer physically flushes to stable storage.
///
/// Note the durability split: `write(2)` alone already survives a
/// process kill (the page cache belongs to the kernel), so the crash
/// harness's SIGKILL loop is exact under every policy. `fsync` governs
/// survival of *machine* crashes — power loss, kernel panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record — group commit degenerates to
    /// per-record commit. The default.
    Always,
    /// `fdatasync` once per `n` records (`n >= 1`).
    EveryN(u64),
    /// `fdatasync` when at least this much time has passed since the
    /// last sync, checked after each append.
    Interval(Duration),
    /// Never sync from the append path; only explicit
    /// [`ShardWal::sync`] calls (e.g. server shutdown) flush. The
    /// process-crash-only durability baseline.
    Never,
}

/// Deterministic fault injection for the log writer — the knobs the
/// crash suite uses to manufacture exactly the torn states recovery
/// must absorb. All counters are per-shard lifetime append indices
/// (0-based, counting only appends that produce a record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailPoints {
    /// On append number `.0`, write only the first `.1` bytes of the
    /// frame and fail with [`PersistError::Injected`] — a mid-record
    /// tear.
    pub torn_append: Option<(u64, usize)>,
    /// On append number `n`, XOR one bit into the frame's CRC field
    /// before writing — an undetected-at-write corruption the reader
    /// must catch.
    pub flip_crc: Option<u64>,
    /// Suppress every physical fsync (the policy's bookkeeping still
    /// runs) — models a drive that lied about the final flush.
    pub drop_sync: bool,
}

/// Tuning for the durability layer, carried by
/// `threepath_sharded::ShardedConfig::persist`.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistConfig {
    /// Directory holding the manifest and per-shard files. Created on
    /// demand.
    pub dir: PathBuf,
    /// Physical flush policy (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// Snapshot a shard (and truncate its log) once this many records
    /// accumulate since the last snapshot. `None` never snapshots —
    /// recovery replays the whole log.
    pub snapshot_every: Option<u64>,
    /// Fault injection, test-only by intent. [`FailPoints::default`]
    /// injects nothing.
    pub failpoints: FailPoints,
}

impl PersistConfig {
    /// A configuration with the safe defaults: fsync every record,
    /// snapshot every 8192 records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every: Some(8192),
            failpoints: FailPoints::default(),
        }
    }

    /// Rejects degenerate tunings with a typed error.
    pub fn validate(&self) -> Result<(), PersistError> {
        if self.fsync == FsyncPolicy::EveryN(0) {
            return Err(PersistError::InvalidConfig(
                "fsync: EveryN(0) would never sync; use Never to say that",
            ));
        }
        if self.snapshot_every == Some(0) {
            return Err(PersistError::InvalidConfig(
                "snapshot_every: Some(0) would snapshot before any record lands",
            ));
        }
        Ok(())
    }

    /// Whether `dir` already holds a persistent map (its manifest
    /// exists) — the "create fresh or recover?" probe.
    pub fn initialized(&self) -> bool {
        crate::manifest::manifest_path(&self.dir).exists()
    }
}

/// Lifetime counters of one shard's log writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Frame bytes appended.
    pub bytes: u64,
    /// Physical fsyncs issued.
    pub syncs: u64,
    /// Snapshots installed (each also rotates the log).
    pub snapshots: u64,
}

impl WalStats {
    /// Adds `other`'s counters into `self` (for cross-shard totals).
    pub fn merge(&mut self, other: &WalStats) {
        self.records += other.records;
        self.bytes += other.bytes;
        self.syncs += other.syncs;
        self.snapshots += other.snapshots;
    }
}

/// The log file for `shard` inside `dir`.
pub fn wal_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

fn encode_header(shard: u32, base_seq: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN as usize);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&shard.to_le_bytes());
    buf.extend_from_slice(&base_seq.to_le_bytes());
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Encodes one record frame, or `None` when the plan contains no
/// updates (reads are never logged).
pub(crate) fn encode_record(seq: u64, ops: &[BatchOp]) -> Option<Vec<u8>> {
    let updates: Vec<&BatchOp> = ops.iter().filter(|o| o.is_update()).collect();
    if updates.is_empty() {
        return None;
    }
    let mut payload = Vec::with_capacity(12 + updates.len() * 17);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&(updates.len() as u32).to_le_bytes());
    for op in updates {
        match *op {
            BatchOp::Insert(k, v) => {
                payload.push(0);
                payload.extend_from_slice(&k.to_le_bytes());
                payload.extend_from_slice(&v.to_le_bytes());
            }
            BatchOp::Remove(k) => {
                payload.push(1);
                payload.extend_from_slice(&k.to_le_bytes());
            }
            BatchOp::Get(_) => unreachable!("filtered above"),
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32c(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Some(frame)
}

/// Decodes a checksum-validated payload into `(seq, updates)`. Any
/// violation here rode in under a *valid* CRC, so it is real corruption
/// (fail closed), not a torn tail.
fn decode_payload(payload: &[u8]) -> Result<(u64, Vec<BatchOp>), &'static str> {
    if payload.len() < MIN_PAYLOAD as usize {
        return Err("payload shorter than its fixed fields");
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let count = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    let mut ops = Vec::with_capacity(count as usize);
    let mut at = 12usize;
    for _ in 0..count {
        let Some(&tag) = payload.get(at) else {
            return Err("payload ends inside an operation");
        };
        at += 1;
        let need = if tag == 0 { 16 } else { 8 };
        if payload.len() < at + need {
            return Err("payload ends inside an operation");
        }
        let key = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
        at += 8;
        match tag {
            0 => {
                let val = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
                at += 8;
                ops.push(BatchOp::Insert(key, val));
            }
            1 => ops.push(BatchOp::Remove(key)),
            _ => return Err("unknown operation tag"),
        }
    }
    if at != payload.len() {
        return Err("payload longer than its operation count");
    }
    Ok((seq, ops))
}

/// One shard's append-only log writer. All mutating access happens under
/// the sharded layer's per-shard log lock, which is what makes the log
/// a total order of that shard's committed plans.
#[derive(Debug)]
pub struct ShardWal {
    file: File,
    path: PathBuf,
    dir: PathBuf,
    shard: u32,
    /// Sequence number the next record will carry.
    next_seq: u64,
    /// Lifetime append index (records only), driving [`FailPoints`].
    appends: u64,
    since_sync: u64,
    last_sync: Instant,
    records_since_snapshot: u64,
    fsync: FsyncPolicy,
    snapshot_every: Option<u64>,
    failpoints: FailPoints,
    stats: WalStats,
}

impl ShardWal {
    /// Creates a fresh, empty log for `shard` (base sequence 0). Fails
    /// with [`PersistError::WouldClobber`] if the shard already has a
    /// log or snapshot on disk.
    pub fn create(cfg: &PersistConfig, shard: u32) -> Result<ShardWal, PersistError> {
        cfg.validate()?;
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create dir", &cfg.dir, e))?;
        for existing in [wal_path(&cfg.dir, shard), snapshot_path(&cfg.dir, shard)] {
            if existing.exists() {
                return Err(PersistError::WouldClobber {
                    path: existing.display().to_string(),
                });
            }
        }
        let path = wal_path(&cfg.dir, shard);
        let file = Self::init_log_file(&path, shard, 0)?;
        sync_dir(&cfg.dir)?;
        Ok(Self::assemble(cfg, shard, path, file, 1))
    }

    /// Writes a fresh header with `base_seq` into a (new or truncated)
    /// log file at `path` and syncs it.
    fn init_log_file(path: &Path, shard: u32, base_seq: u64) -> Result<File, PersistError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create wal", path, e))?;
        file.write_all(&encode_header(shard, base_seq))
            .map_err(|e| io_err("write wal header", path, e))?;
        file.sync_data().map_err(|e| io_err("fsync wal header", path, e))?;
        Ok(file)
    }

    fn assemble(
        cfg: &PersistConfig,
        shard: u32,
        path: PathBuf,
        file: File,
        next_seq: u64,
    ) -> ShardWal {
        ShardWal {
            file,
            path,
            dir: cfg.dir.clone(),
            shard,
            next_seq,
            appends: 0,
            since_sync: 0,
            last_sync: Instant::now(),
            records_since_snapshot: 0,
            fsync: cfg.fsync,
            snapshot_every: cfg.snapshot_every,
            failpoints: cfg.failpoints,
            stats: WalStats::default(),
        }
    }

    /// The shard this log belongs to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Lifetime counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Appends one record covering the update operations of `ops`
    /// (write-ahead: call **before** executing the plan, holding the
    /// shard's log lock across both). Returns whether a record was
    /// written — a plan of pure reads appends nothing and consumes no
    /// sequence number.
    pub fn append(&mut self, ops: &[BatchOp]) -> Result<bool, PersistError> {
        let Some(mut frame) = encode_record(self.next_seq, ops) else {
            return Ok(false);
        };
        let index = self.appends;
        self.appends += 1;
        if self.failpoints.flip_crc == Some(index) {
            frame[4] ^= 0x01; // one bit of the CRC field
        }
        if let Some((at, keep)) = self.failpoints.torn_append {
            if at == index {
                let keep = keep.min(frame.len());
                self.file
                    .write_all(&frame[..keep])
                    .map_err(|e| io_err("append (torn)", &self.path, e))?;
                return Err(PersistError::Injected { point: "torn_append" });
            }
        }
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append", &self.path, e))?;
        self.next_seq += 1;
        self.records_since_snapshot += 1;
        self.stats.records += 1;
        self.stats.bytes += frame.len() as u64;
        self.since_sync += 1;
        let due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.since_sync >= n,
            FsyncPolicy::Interval(d) => self.last_sync.elapsed() >= d,
            FsyncPolicy::Never => false,
        };
        if due {
            self.sync()?;
        }
        Ok(true)
    }

    /// Unconditionally flushes to stable storage (unless the
    /// `drop_sync` fail point is armed) and resets the group-commit
    /// counters.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.since_sync = 0;
        self.last_sync = Instant::now();
        if self.failpoints.drop_sync {
            return Ok(());
        }
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync wal", &self.path, e))?;
        self.stats.syncs += 1;
        Ok(())
    }

    /// Whether enough records accumulated since the last snapshot that
    /// the caller should collect the shard and
    /// [`install_snapshot`](Self::install_snapshot).
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every
            .is_some_and(|n| self.records_since_snapshot >= n)
    }

    /// Installs a snapshot of the shard's full pair set and rotates the
    /// log. The caller must guarantee `pairs` reflects every record
    /// appended so far (the sharded layer holds the shard's log lock, so
    /// no persistent updater can be mid-flight). Crash-safe: the
    /// snapshot lands by atomic rename before the log is reset, so
    /// every kill point leaves a recoverable (snapshot, log) pair.
    pub fn install_snapshot(&mut self, pairs: &[(u64, u64)]) -> Result<(), PersistError> {
        let covered = self.next_seq - 1;
        write_snapshot(&self.dir, self.shard, covered, pairs)?;
        // From here on the old log is redundant: every record it holds
        // is covered by the snapshot just renamed into place. Reset it
        // in place (truncate + fresh header) — a crash after the rename
        // but before the reset just replays covered records onto the
        // snapshot, which is idempotent at the state level only for the
        // records' *effects already being in the snapshot*; to keep
        // replay strictly "records after the snapshot", recovery skips
        // records with seq <= snapshot seq instead of re-applying them.
        self.file = Self::init_log_file(&self.path, self.shard, covered)?;
        sync_dir(&self.dir)?;
        self.records_since_snapshot = 0;
        self.stats.snapshots += 1;
        Ok(())
    }
}

impl Drop for ShardWal {
    fn drop(&mut self) {
        // Best-effort final flush on clean teardown; errors are
        // ignorable here because every explicit durability point
        // (policy syncs, shutdown) already surfaced them.
        let _ = self.sync();
    }
}

/// What [`recover_shard`] found and rebuilt for one shard.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The shard.
    pub shard: u32,
    /// Sequence number the loaded snapshot covered (0 when none).
    pub snapshot_seq: u64,
    /// Pairs loaded from the snapshot.
    pub snapshot_pairs: usize,
    /// Log records replayed on top of the snapshot.
    pub records_replayed: u64,
    /// Update operations inside those records.
    pub ops_replayed: u64,
    /// Bytes cut from the log tail (torn or checksum-corrupt).
    pub bytes_truncated: u64,
    /// Live pairs after replay.
    pub live_pairs: usize,
    /// Wall-clock recovery time for this shard.
    pub elapsed: Duration,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {}: snapshot seq {} ({} pairs) + {} records ({} ops) replayed, \
             {} bytes truncated, {} live pairs, {:?}",
            self.shard,
            self.snapshot_seq,
            self.snapshot_pairs,
            self.records_replayed,
            self.ops_replayed,
            self.bytes_truncated,
            self.live_pairs,
            self.elapsed
        )
    }
}

/// The result of recovering one shard: its surviving pairs, a log
/// writer positioned after the last durable record, and the report.
#[derive(Debug)]
pub struct ShardRecovery {
    /// The shard's recovered state, in the order the replay map yields
    /// it (ascending keys).
    pub pairs: Vec<(u64, u64)>,
    /// The re-armed writer — appends continue the sequence the log left
    /// off at.
    pub wal: ShardWal,
    /// What recovery found.
    pub report: RecoveryReport,
}

/// Recovers one shard from `cfg.dir`: loads its snapshot, validates the
/// log against it, replays every fully-framed record past the snapshot,
/// and truncates torn or checksum-corrupt tail bytes. Never panics on
/// bad bytes — damage that a crash cannot produce is a typed error, and
/// damage that a crash *does* produce (a torn tail) is absorbed
/// silently and reported in [`RecoveryReport::bytes_truncated`].
pub fn recover_shard(cfg: &PersistConfig, shard: u32) -> Result<ShardRecovery, PersistError> {
    cfg.validate()?;
    let start = Instant::now();
    let snap = read_snapshot(&cfg.dir, shard)?;
    let (snap_seq, snap_pairs) = match &snap {
        Some((seq, pairs)) => (*seq, pairs.len()),
        None => (0, 0),
    };
    fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create dir", &cfg.dir, e))?;
    let path = wal_path(&cfg.dir, shard);
    let disp = || path.display().to_string();

    let mut map: BTreeMap<u64, u64> = snap.into_iter().flat_map(|(_, p)| p).collect();
    let mut report = RecoveryReport {
        shard,
        snapshot_seq: snap_seq,
        snapshot_pairs: snap_pairs,
        records_replayed: 0,
        ops_replayed: 0,
        bytes_truncated: 0,
        live_pairs: 0,
        elapsed: Duration::ZERO,
    };

    let mut file = match OpenOptions::new().read(true).write(true).open(&path) {
        Ok(f) => Some(f),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(io_err("open wal", &path, e)),
    };

    let mut buf = Vec::new();
    if let Some(f) = file.as_mut() {
        f.read_to_end(&mut buf).map_err(|e| io_err("read wal", &path, e))?;
    }

    // Header validation. The header goes down in one 24-byte write,
    // which a process kill cannot tear — so a file *shorter* than a
    // header is crash debris (creation, or a rotation reset killed
    // between the truncate and the header write; the snapshot rename
    // already landed, so the snapshot alone is consistent), while a
    // full-length header that fails its checksum is damage no crash
    // produces. The latter fails closed once a snapshot exists; before
    // any snapshot the log is the whole history and we conservatively
    // restart it empty, counting the bytes as truncated.
    let header_ok = buf.len() >= HEADER_LEN as usize && {
        let stored = u32::from_le_bytes(buf[20..24].try_into().unwrap());
        crc32c(&buf[..20]) == stored
    };
    // The sequence number of the last record surviving in the log file
    // (snap_seq when the file is reinitialized from the snapshot).
    let last_seq;
    let file = if !header_ok {
        if file.is_some() && buf.len() >= 4 && &buf[0..4] != MAGIC {
            return Err(PersistError::BadMagic { path: disp() });
        }
        if file.is_some() && snap_seq > 0 && buf.len() >= HEADER_LEN as usize {
            return Err(PersistError::CorruptRecord {
                path: disp(),
                offset: 0,
                reason: "log header damaged",
            });
        }
        // No log at all (fresh shard, or a snapshotted shard whose log
        // reset was interrupted — the snapshot alone is consistent), or
        // a header torn mid-creation before any snapshot existed.
        report.bytes_truncated = buf.len() as u64;
        last_seq = snap_seq;
        ShardWal::init_log_file(&path, shard, snap_seq)?
    } else {
        let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(PersistError::VersionSkew {
                path: disp(),
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let stored_shard = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if stored_shard != shard {
            return Err(PersistError::CorruptRecord {
                path: disp(),
                offset: 8,
                reason: "log belongs to a different shard",
            });
        }
        let base_seq = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        if base_seq > snap_seq {
            // The log starts after records the snapshot never covered:
            // committed updates are unrecoverable. Fail closed.
            return Err(PersistError::SnapshotMismatch {
                path: disp(),
                log_base: base_seq,
                snapshot_seq: snap_seq,
            });
        }

        // Replay. `expected` tracks frame-order sequence numbers from
        // the log's own base; only records past the snapshot mutate the
        // map (a crash between the snapshot rename and the log reset
        // leaves covered records in the log — skipped, not re-applied).
        let mut offset = HEADER_LEN as usize;
        let mut expected = base_seq + 1;
        let mut good_end = offset;
        loop {
            let remaining = buf.len() - offset;
            if remaining == 0 {
                break;
            }
            if remaining < 8 {
                break; // torn frame prefix
            }
            let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().unwrap());
            if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) {
                break; // torn or garbage length word
            }
            let body_at = offset + 8;
            if buf.len() < body_at + len as usize {
                break; // torn payload
            }
            let stored_crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().unwrap());
            let payload = &buf[body_at..body_at + len as usize];
            if crc32c(payload) != stored_crc {
                break; // corrupt record: cut here
            }
            let (seq, ops) = decode_payload(payload).map_err(|reason| {
                PersistError::CorruptRecord {
                    path: disp(),
                    offset: offset as u64,
                    reason,
                }
            })?;
            if seq != expected {
                return Err(PersistError::CorruptRecord {
                    path: disp(),
                    offset: offset as u64,
                    reason: "sequence number gap under a valid checksum",
                });
            }
            if seq > snap_seq {
                for op in &ops {
                    match *op {
                        BatchOp::Insert(k, v) => {
                            map.insert(k, v);
                        }
                        BatchOp::Remove(k) => {
                            map.remove(&k);
                        }
                        BatchOp::Get(_) => unreachable!("reads are never logged"),
                    }
                }
                report.records_replayed += 1;
                report.ops_replayed += ops.len() as u64;
            }
            expected += 1;
            offset = body_at + len as usize;
            good_end = offset;
        }
        report.bytes_truncated = (buf.len() - good_end) as u64;
        let mut f = file.expect("header_ok implies the file was opened");
        if expected - 1 < snap_seq {
            // The snapshot superseded every surviving record (a crash
            // landed between the snapshot rename and the log reset, and
            // possibly tore the tail too): finish the interrupted
            // rotation so appended records stay contiguous from the
            // snapshot.
            last_seq = snap_seq;
            drop(f);
            ShardWal::init_log_file(&path, shard, snap_seq)?
        } else {
            last_seq = expected - 1;
            if report.bytes_truncated > 0 {
                f.set_len(good_end as u64)
                    .map_err(|e| io_err("truncate torn tail", &path, e))?;
                f.sync_data().map_err(|e| io_err("fsync truncation", &path, e))?;
            }
            f.seek(SeekFrom::End(0)).map_err(|e| io_err("seek wal end", &path, e))?;
            f
        }
    };

    let mut wal = ShardWal::assemble(cfg, shard, path, file, last_seq + 1);
    // Records already in the current log count against the snapshot
    // cadence, so a restart mid-interval does not double the interval.
    wal.records_since_snapshot = last_seq - snap_seq;
    report.live_pairs = map.len();
    report.elapsed = start.elapsed();
    Ok(ShardRecovery {
        pairs: map.into_iter().collect(),
        wal,
        report,
    })
}

#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "threepath-persist-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(dir: &Path) -> PersistConfig {
        PersistConfig {
            snapshot_every: None,
            ..PersistConfig::new(dir)
        }
    }

    fn plan(ops: &[(u64, Option<u64>)]) -> Vec<BatchOp> {
        ops.iter()
            .map(|&(k, v)| match v {
                Some(v) => BatchOp::Insert(k, v),
                None => BatchOp::Remove(k),
            })
            .collect()
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = test_dir("roundtrip");
        let c = cfg(&dir);
        let mut wal = ShardWal::create(&c, 0).unwrap();
        assert!(wal.append(&plan(&[(1, Some(10)), (2, Some(20))])).unwrap());
        assert!(wal.append(&plan(&[(1, None), (3, Some(30))])).unwrap());
        // A read-only plan appends nothing and burns no sequence number.
        let before = wal.next_seq();
        assert!(!wal.append(&[BatchOp::Get(1)]).unwrap());
        assert_eq!(wal.next_seq(), before);
        drop(wal);

        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.pairs, vec![(2, 20), (3, 30)]);
        assert_eq!(r.report.records_replayed, 2);
        assert_eq!(r.report.ops_replayed, 4);
        assert_eq!(r.report.bytes_truncated, 0);
        assert_eq!(r.report.snapshot_seq, 0);
        assert_eq!(r.wal.next_seq(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_wal_continues_the_sequence() {
        let dir = test_dir("continue");
        let c = cfg(&dir);
        let mut wal = ShardWal::create(&c, 0).unwrap();
        wal.append(&plan(&[(1, Some(1))])).unwrap();
        drop(wal);
        let mut r = recover_shard(&c, 0).unwrap();
        r.wal.append(&plan(&[(2, Some(2))])).unwrap();
        drop(r);
        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.pairs, vec![(1, 1), (2, 2)]);
        assert_eq!(r.report.records_replayed, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_to_clobber() {
        let dir = test_dir("clobber");
        let c = cfg(&dir);
        let _wal = ShardWal::create(&c, 0).unwrap();
        assert!(matches!(
            ShardWal::create(&c, 0),
            Err(PersistError::WouldClobber { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policies_schedule_syncs() {
        let dir = test_dir("fsync");
        // Always: one physical sync per record.
        let c = PersistConfig { fsync: FsyncPolicy::Always, ..cfg(&dir) };
        let mut wal = ShardWal::create(&c, 0).unwrap();
        for k in 0..4 {
            wal.append(&plan(&[(k, Some(k))])).unwrap();
        }
        assert_eq!(wal.stats().syncs, 4);
        drop(wal);
        fs::remove_dir_all(&dir).ok();

        // EveryN(3): group commit — one sync per three records.
        let dir = test_dir("fsync-group");
        let c = PersistConfig { fsync: FsyncPolicy::EveryN(3), ..cfg(&dir) };
        let mut wal = ShardWal::create(&c, 1).unwrap();
        for k in 0..7 {
            wal.append(&plan(&[(k, Some(k))])).unwrap();
        }
        assert_eq!(wal.stats().syncs, 2);
        wal.sync().unwrap();
        assert_eq!(wal.stats().syncs, 3);
        drop(wal);
        fs::remove_dir_all(&dir).ok();

        // Never: only explicit syncs flush.
        let dir = test_dir("fsync-never");
        let c = PersistConfig { fsync: FsyncPolicy::Never, ..cfg(&dir) };
        let mut wal = ShardWal::create(&c, 2).unwrap();
        for k in 0..5 {
            wal.append(&plan(&[(k, Some(k))])).unwrap();
        }
        assert_eq!(wal.stats().syncs, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degenerate_tunings_are_typed_errors() {
        let dir = test_dir("tuning");
        for bad in [
            PersistConfig { fsync: FsyncPolicy::EveryN(0), ..cfg(&dir) },
            PersistConfig { snapshot_every: Some(0), ..cfg(&dir) },
        ] {
            assert!(matches!(
                ShardWal::create(&bad, 0),
                Err(PersistError::InvalidConfig(_))
            ));
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_failpoint_truncates_on_recovery() {
        let dir = test_dir("torn");
        let good = plan(&[(1, Some(10))]);
        let frame_len = encode_record(1, &good).unwrap().len();
        for keep in 0..frame_len {
            let mut c = cfg(&dir);
            c.dir = dir.join(format!("keep-{keep}"));
            c.failpoints.torn_append = Some((1, keep));
            let mut wal = ShardWal::create(&c, 0).unwrap();
            wal.append(&good).unwrap();
            let err = wal.append(&plan(&[(2, Some(20))])).unwrap_err();
            assert_eq!(err, PersistError::Injected { point: "torn_append" });
            drop(wal);
            let r = recover_shard(&c, 0).unwrap();
            assert_eq!(r.pairs, vec![(1, 10)], "keep={keep}");
            assert_eq!(r.report.bytes_truncated, keep as u64, "keep={keep}");
            assert_eq!(r.wal.next_seq(), 2);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc_flip_failpoint_cuts_the_tail_not_the_process() {
        let dir = test_dir("flip");
        let mut c = cfg(&dir);
        c.failpoints.flip_crc = Some(2);
        let mut wal = ShardWal::create(&c, 0).unwrap();
        for k in 0..4 {
            wal.append(&plan(&[(k, Some(k + 100))])).unwrap();
        }
        drop(wal);
        // Records 0 and 1 survive; the flipped record 2 and everything
        // after it are cut (replay cannot trust anything past the first
        // bad checksum).
        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.pairs, vec![(0, 100), (1, 101)]);
        assert_eq!(r.report.records_replayed, 2);
        assert!(r.report.bytes_truncated > 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_sync_failpoint_suppresses_physical_syncs() {
        let dir = test_dir("dropsync");
        let mut c = PersistConfig { fsync: FsyncPolicy::Always, ..cfg(&dir) };
        c.failpoints.drop_sync = true;
        let mut wal = ShardWal::create(&c, 0).unwrap();
        for k in 0..3 {
            wal.append(&plan(&[(k, Some(k))])).unwrap();
        }
        assert_eq!(wal.stats().syncs, 0, "every fsync was dropped");
        drop(wal);
        // The data still reached the kernel, so in-process recovery (the
        // page-cache durability a SIGKILL leaves intact) sees it all.
        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.pairs.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_tail_is_truncated_not_fatal() {
        let dir = test_dir("garbage");
        let c = cfg(&dir);
        let mut wal = ShardWal::create(&c, 0).unwrap();
        wal.append(&plan(&[(5, Some(50))])).unwrap();
        drop(wal);
        let path = wal_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xAB; 37]).unwrap();
        drop(f);
        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.pairs, vec![(5, 50)]);
        assert_eq!(r.report.bytes_truncated, 37);
        // Truncation repaired the file in place: a second recovery is
        // clean.
        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.report.bytes_truncated, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_rotates_the_log_and_bounds_replay() {
        let dir = test_dir("snaprotate");
        let c = cfg(&dir);
        let mut wal = ShardWal::create(&c, 0).unwrap();
        let mut state = BTreeMap::new();
        for k in 0..10u64 {
            wal.append(&plan(&[(k, Some(k * 2))])).unwrap();
            state.insert(k, k * 2);
        }
        let pairs: Vec<(u64, u64)> = state.iter().map(|(&k, &v)| (k, v)).collect();
        wal.install_snapshot(&pairs).unwrap();
        assert_eq!(wal.stats().snapshots, 1);
        wal.append(&plan(&[(3, None), (100, Some(1))])).unwrap();
        drop(wal);

        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.report.snapshot_seq, 10);
        assert_eq!(r.report.snapshot_pairs, 10);
        assert_eq!(r.report.records_replayed, 1, "replay is bounded by the snapshot");
        assert_eq!(r.pairs.len(), 10);
        assert!(r.pairs.contains(&(100, 1)) && !r.pairs.iter().any(|&(k, _)| k == 3));
        assert_eq!(r.wal.next_seq(), 12);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_due_follows_the_cadence() {
        let dir = test_dir("cadence");
        let c = PersistConfig { snapshot_every: Some(3), ..cfg(&dir) };
        let mut wal = ShardWal::create(&c, 0).unwrap();
        for k in 0..2 {
            wal.append(&plan(&[(k, Some(k))])).unwrap();
        }
        assert!(!wal.snapshot_due());
        wal.append(&plan(&[(9, Some(9))])).unwrap();
        assert!(wal.snapshot_due());
        wal.install_snapshot(&[(0, 0), (1, 1), (9, 9)]).unwrap();
        assert!(!wal.snapshot_due());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn log_missing_its_snapshot_fails_closed() {
        // A log whose header says "base 10" with no snapshot on disk
        // means committed records are gone — sequence-number agreement
        // must reject it.
        let dir = test_dir("noshap");
        let c = PersistConfig { snapshot_every: Some(2), ..cfg(&dir) };
        let mut wal = ShardWal::create(&c, 0).unwrap();
        for k in 0..2 {
            wal.append(&plan(&[(k, Some(k))])).unwrap();
        }
        wal.install_snapshot(&[(0, 0), (1, 1)]).unwrap();
        drop(wal);
        fs::remove_file(snapshot_path(&dir, 0)).unwrap();
        assert!(matches!(
            recover_shard(&c, 0),
            Err(PersistError::SnapshotMismatch { log_base: 2, snapshot_seq: 0, .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_newer_than_the_log_lineage_fails_closed() {
        // Conversely: a snapshot covering seq 5 with a log rotated at
        // base 7 would mean records 6..=7 exist nowhere.
        let dir = test_dir("skew");
        let c = cfg(&dir);
        let _wal = ShardWal::create(&c, 0);
        // Hand-rotate the log header to base 7, snapshot only covers 5.
        write_snapshot(&dir, 0, 5, &[(1, 1)]).unwrap();
        ShardWal::init_log_file(&wal_path(&dir, 0), 0, 7).unwrap();
        assert!(matches!(
            recover_shard(&c, 0),
            Err(PersistError::SnapshotMismatch { log_base: 7, snapshot_seq: 5, .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequence_gap_under_valid_checksum_fails_closed() {
        let dir = test_dir("gap");
        let c = cfg(&dir);
        let wal = ShardWal::create(&c, 0).unwrap();
        drop(wal);
        let path = wal_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&encode_record(1, &plan(&[(1, Some(1))])).unwrap()).unwrap();
        // Record 3 with record 2 missing: valid CRC, impossible order.
        f.write_all(&encode_record(3, &plan(&[(3, Some(3))])).unwrap()).unwrap();
        drop(f);
        assert!(matches!(
            recover_shard(&c, 0),
            Err(PersistError::CorruptRecord { reason: "sequence number gap under a valid checksum", .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_version_and_magic_fail_closed() {
        let dir = test_dir("version");
        let c = cfg(&dir);
        drop(ShardWal::create(&c, 0).unwrap());
        let path = wal_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = 99;
        let crc = crc32c(&bytes[..20]);
        bytes[20..24].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            recover_shard(&c, 0),
            Err(PersistError::VersionSkew { found: 99, .. })
        ));
        fs::write(&path, b"not a wal file at all").unwrap();
        assert!(matches!(recover_shard(&c, 0), Err(PersistError::BadMagic { .. })));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_recover_to_an_empty_shard() {
        let dir = test_dir("fresh");
        let c = cfg(&dir);
        let r = recover_shard(&c, 0).unwrap();
        assert!(r.pairs.is_empty());
        assert_eq!(r.wal.next_seq(), 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_without_log_resumes_from_the_snapshot() {
        let dir = test_dir("snaponly");
        let c = cfg(&dir);
        write_snapshot(&dir, 0, 4, &[(1, 1), (2, 2)]).unwrap();
        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.pairs, vec![(1, 1), (2, 2)]);
        assert_eq!(r.wal.next_seq(), 5);
        fs::remove_dir_all(&dir).ok();
    }

    /// A rotation reset killed between the log truncate and the header
    /// write leaves a zero-length log beside the renamed snapshot — the
    /// crash harness hits this for real. The snapshot alone is
    /// consistent (the reset runs under the shard lock, so no record can
    /// land between rename and reinit); recovery must resume from it,
    /// not fail closed. A *full-length* damaged header is still fatal:
    /// single-write headers cannot be torn by a process kill.
    #[test]
    fn empty_log_beside_a_snapshot_is_an_interrupted_rotation() {
        let dir = test_dir("emptyrot");
        let c = cfg(&dir);
        write_snapshot(&dir, 0, 4, &[(1, 1), (2, 2)]).unwrap();
        fs::write(wal_path(&dir, 0), b"").unwrap();
        let r = recover_shard(&c, 0).unwrap();
        assert_eq!(r.pairs, vec![(1, 1), (2, 2)]);
        assert_eq!(r.wal.next_seq(), 5);
        assert_eq!(r.report.bytes_truncated, 0);

        // Same snapshot, but a full-size header with a flipped CRC bit:
        // damage no crash produces — typed error, fail closed.
        let mut hdr = encode_header(0, 4);
        hdr[23] ^= 0x40;
        fs::write(wal_path(&dir, 0), &hdr).unwrap();
        let err = recover_shard(&c, 0).unwrap_err();
        assert!(
            matches!(err, PersistError::CorruptRecord { reason: "log header damaged", .. }),
            "unexpected: {err:?}"
        );
        fs::remove_dir_all(&dir).ok();
    }
}
