//! Snapshot files: a shard's full pair set at a covered sequence number.
//! Written atomically (temp file, fsync, rename, directory fsync), so a
//! snapshot either exists completely or not at all — recovery never has
//! to absorb a torn snapshot the way it absorbs a torn log tail.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{crc32c, io_err, sync_dir, PersistError, FORMAT_VERSION};

const MAGIC: &[u8; 4] = b"3PSN";
/// magic + version + shard + covered seq + pair count
const HEADER_LEN: usize = 4 + 4 + 4 + 8 + 8;

/// The snapshot file for `shard` inside `dir`.
pub fn snapshot_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard}.snap"))
}

/// Writes a snapshot of `pairs` covering all records up to and including
/// `seq`, atomically replacing any previous snapshot for `shard`.
pub fn write_snapshot(
    dir: &Path,
    shard: u32,
    seq: u64,
    pairs: &[(u64, u64)],
) -> Result<(), PersistError> {
    let mut buf = Vec::with_capacity(HEADER_LEN + pairs.len() * 16 + 4);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&shard.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for &(k, v) in pairs {
        buf.extend_from_slice(&k.to_le_bytes());
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let path = snapshot_path(dir, shard);
    let tmp = dir.join(format!("shard-{shard}.snap.tmp"));
    fs::write(&tmp, &buf).map_err(|e| io_err("write snapshot", &tmp, e))?;
    let f = fs::File::open(&tmp).map_err(|e| io_err("reopen snapshot", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("fsync snapshot", &tmp, e))?;
    fs::rename(&tmp, &path).map_err(|e| io_err("rename snapshot", &tmp, e))?;
    sync_dir(dir)
}

/// Reads and validates `shard`'s snapshot. `Ok(None)` when the shard has
/// never snapshotted; any malformed byte is a typed error, never a
/// panic. Returns the covered sequence number and the pairs.
#[allow(clippy::type_complexity)]
pub fn read_snapshot(
    dir: &Path,
    shard: u32,
) -> Result<Option<(u64, Vec<(u64, u64)>)>, PersistError> {
    let path = snapshot_path(dir, shard);
    let buf = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read snapshot", &path, e)),
    };
    let disp = || path.display().to_string();
    let corrupt = |reason| PersistError::CorruptSnapshot { path: disp(), reason };
    if buf.len() < HEADER_LEN + 4 {
        return Err(corrupt("shorter than a snapshot header"));
    }
    if &buf[0..4] != MAGIC {
        return Err(PersistError::BadMagic { path: disp() });
    }
    let stored_crc = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
    if crc32c(&buf[..buf.len() - 4]) != stored_crc {
        return Err(corrupt("body checksum mismatch"));
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionSkew {
            path: disp(),
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let stored_shard = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if stored_shard != shard {
        return Err(corrupt("snapshot belongs to a different shard"));
    }
    let seq = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    let count = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    let body = &buf[HEADER_LEN..buf.len() - 4];
    if body.len() as u64 != count * 16 {
        return Err(corrupt("pair count disagrees with body length"));
    }
    let mut pairs = Vec::with_capacity(count as usize);
    for chunk in body.chunks_exact(16) {
        pairs.push((
            u64::from_le_bytes(chunk[..8].try_into().unwrap()),
            u64::from_le_bytes(chunk[8..].try_into().unwrap()),
        ));
    }
    Ok(Some((seq, pairs)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::test_dir;

    #[test]
    fn round_trips_replaces_and_rejects_damage() {
        let dir = test_dir("snapshot");
        assert_eq!(read_snapshot(&dir, 0).unwrap(), None);
        write_snapshot(&dir, 0, 10, &[(1, 2), (3, 4)]).unwrap();
        assert_eq!(read_snapshot(&dir, 0).unwrap(), Some((10, vec![(1, 2), (3, 4)])));
        // A newer snapshot atomically replaces the old one.
        write_snapshot(&dir, 0, 25, &[(5, 6)]).unwrap();
        assert_eq!(read_snapshot(&dir, 0).unwrap(), Some((25, vec![(5, 6)])));
        // Wrong shard index in the header is detected.
        write_snapshot(&dir, 7, 3, &[]).unwrap();
        let wrong = snapshot_path(&dir, 7);
        fs::rename(&wrong, snapshot_path(&dir, 8)).unwrap();
        assert!(matches!(
            read_snapshot(&dir, 8),
            Err(PersistError::CorruptSnapshot { reason: "snapshot belongs to a different shard", .. })
        ));
        // Bit-flip anywhere in the body: checksum catches it.
        let path = snapshot_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&dir, 0),
            Err(PersistError::CorruptSnapshot { reason: "body checksum mismatch", .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
