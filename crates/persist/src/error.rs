//! The typed durability error surface. Recovery **never panics on bad
//! bytes**: every malformed byte sequence maps to one of these variants
//! (or to silent tail truncation when the damage is the expected
//! signature of a crashed append).

use std::fmt;
use std::io;

/// Error from the persistence layer. `Clone + PartialEq` so it can ride
/// inside `threepath_sharded::ConfigError` (io errors are captured as
/// `(ErrorKind, message)` rather than the non-cloneable `io::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An operating-system I/O failure, annotated with the operation and
    /// path so a failed recovery names the exact file.
    Io {
        /// What the layer was doing ("open wal", "fsync dir", ...).
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// The underlying `io::ErrorKind`.
        kind: io::ErrorKind,
        /// The rendered OS error message.
        msg: String,
    },
    /// A structurally *valid-checksum* record violates the format: a
    /// sequence-number gap, an unknown op tag, or a payload whose length
    /// disagrees with its op count. Unlike a torn tail (truncated
    /// silently), this cannot be produced by a crashed append and fails
    /// closed.
    CorruptRecord {
        /// The log file.
        path: String,
        /// Byte offset of the offending record.
        offset: u64,
        /// What was wrong.
        reason: &'static str,
    },
    /// A snapshot file whose header, body, or trailing checksum is
    /// malformed. Snapshots are written atomically (temp + rename), so
    /// unlike the log tail there is no benign torn state to absorb.
    CorruptSnapshot {
        /// The snapshot file.
        path: String,
        /// What was wrong.
        reason: &'static str,
    },
    /// The snapshot and log disagree about where the log begins: the
    /// log's `base_seq` is beyond the snapshot's covered sequence (or a
    /// snapshot exists that the log's lineage cannot have produced), so
    /// replaying would silently skip committed updates.
    SnapshotMismatch {
        /// The file whose header exposed the disagreement.
        path: String,
        /// The log's base sequence number.
        log_base: u64,
        /// The snapshot's covered sequence number (0 when absent).
        snapshot_seq: u64,
    },
    /// The file carries a recognized magic but a format version this
    /// build does not speak — fail closed rather than misparse.
    VersionSkew {
        /// The file.
        path: String,
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The file does not start with the expected magic — it is not one
    /// of ours (or the header itself was destroyed).
    BadMagic {
        /// The file.
        path: String,
    },
    /// A fresh persistent map was asked to initialize a directory that
    /// already holds shard state. Creating would clobber it; use
    /// `recover` instead.
    WouldClobber {
        /// The pre-existing file.
        path: String,
    },
    /// The directory's manifest disagrees with the configured map layout
    /// (shard count, backend, router, or key space). Replaying a log
    /// under a different partition would scatter keys to wrong shards.
    ManifestMismatch {
        /// Which layout field disagrees.
        field: &'static str,
        /// Value recorded in the manifest.
        stored: u64,
        /// Value in the supplied configuration.
        configured: u64,
    },
    /// `recover` was called without a persistence configuration.
    NotPersisted,
    /// Degenerate persistence tuning (e.g. `fsync: EveryN(0)` or
    /// `snapshot_every: Some(0)`).
    InvalidConfig(&'static str),
    /// A [`FailPoints`](crate::FailPoints) hook fired in the log writer —
    /// test-only by construction, surfaced as an error so harnesses can
    /// observe exactly where the injected fault landed.
    Injected {
        /// The fail point that fired.
        point: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, kind, msg } => {
                write!(f, "i/o failure during {op} on {path}: {msg} ({kind:?})")
            }
            PersistError::CorruptRecord { path, offset, reason } => write!(
                f,
                "corrupt log record in {path} at byte {offset}: {reason}"
            ),
            PersistError::CorruptSnapshot { path, reason } => {
                write!(f, "corrupt snapshot {path}: {reason}")
            }
            PersistError::SnapshotMismatch { path, log_base, snapshot_seq } => write!(
                f,
                "snapshot/log disagree in {path}: log starts after seq {log_base} but the \
                 snapshot covers up to seq {snapshot_seq}"
            ),
            PersistError::VersionSkew { path, found, supported } => write!(
                f,
                "{path} has format version {found}; this build supports version {supported}"
            ),
            PersistError::BadMagic { path } => {
                write!(f, "{path} does not carry a threepath persistence magic")
            }
            PersistError::WouldClobber { path } => write!(
                f,
                "{path} already exists; building a fresh persistent map would clobber it \
                 (use recover to resume)"
            ),
            PersistError::ManifestMismatch { field, stored, configured } => write!(
                f,
                "manifest mismatch on {field}: directory was written with {stored}, \
                 configuration says {configured}"
            ),
            PersistError::NotPersisted => {
                f.write_str("recover requires a persistence configuration (persist was None)")
            }
            PersistError::InvalidConfig(why) => write!(f, "invalid persistence tuning: {why}"),
            PersistError::Injected { point } => write!(f, "injected fault at `{point}`"),
        }
    }
}

impl std::error::Error for PersistError {}
