//! Per-shard durability for the threepath sharded map: a checksummed
//! append-only write-ahead log plus periodic snapshots, so a crashed
//! process recovers to snapshot-load + bounded log replay.
//!
//! This crate owns the **storage formats and the per-shard recovery
//! algorithm**; it knows nothing about trees, routers, or HTM. The
//! sharded layer (`threepath-sharded`) decides *when* to append (under
//! its per-shard log lock, before an update executes — write-ahead) and
//! *when* to snapshot (at a quiescent point where the log lock excludes
//! every other persistent updater), and feeds recovered pairs back into
//! its shards.
//!
//! # On-disk layout
//!
//! A persistence directory holds one `manifest`, and per shard `s` a log
//! `shard-<s>.wal` and (once the first snapshot lands) `shard-<s>.snap`.
//! All files are little-endian and carry a magic + format-version header
//! so a future format bump fails closed with
//! [`PersistError::VersionSkew`] instead of misparsing.
//!
//! **WAL** (`shard-<s>.wal`): a 24-byte header (`b"3PWL"`, version,
//! shard index, `base_seq`, header CRC) followed by records. Each record
//! is `[len: u32][crc: u32][payload]` where `crc` is the CRC-32C of the
//! payload and the payload is `[seq: u64][op_count: u32]` followed by
//! the update operations (tag byte, key, value-for-inserts). `base_seq`
//! is the sequence number already covered by the shard's snapshot when
//! the log was created or rotated; record sequence numbers are
//! contiguous from `base_seq + 1`. Reads never log; an all-read plan
//! appends nothing.
//!
//! **Snapshot** (`shard-<s>.snap`): header (`b"3PSN"`, version, shard,
//! covered sequence number, pair count), the pairs, and a trailing
//! CRC-32C over everything before it. Snapshots are written to a temp
//! file, fsynced, and atomically renamed into place before the log is
//! rotated, so a crash at any point leaves either the old
//! (snapshot, log) pair or the new one — never a torn mix.
//!
//! # Recovery
//!
//! [`recover_shard`] loads the snapshot (if any), validates the log
//! header against it, replays records with `seq > snapshot_seq`, and
//! **truncates** the log at the first torn or checksum-corrupt record —
//! a crashed append is expected damage, never an error. Structurally
//! valid records that violate the format (bad op tag, sequence gap with
//! a *valid* checksum) are real corruption and fail closed with a typed
//! [`PersistError`]. The outcome of each shard's recovery is summarized
//! in a [`RecoveryReport`].
//!
//! # Fault injection
//!
//! [`FailPoints`] arms deterministic faults inside the log writer —
//! truncate mid-record, flip a CRC byte, suppress fsync — so the crash
//! suite can manufacture exactly the torn states recovery must handle.

#![warn(missing_docs)]

mod crc;
mod error;
mod manifest;
mod snapshot;
mod wal;

pub use crc::crc32c;
pub use error::PersistError;
pub use manifest::{read_manifest, write_manifest, Manifest};
pub use snapshot::{read_snapshot, snapshot_path, write_snapshot};
pub use wal::{
    recover_shard, FailPoints, FsyncPolicy, PersistConfig, RecoveryReport, ShardRecovery,
    ShardWal, WalStats,
};

/// Current on-disk format version, shared by the manifest, WAL, and
/// snapshot headers. Bump on any layout change; readers reject other
/// versions with [`PersistError::VersionSkew`].
pub const FORMAT_VERSION: u32 = 1;

pub(crate) fn io_err(op: &'static str, path: &std::path::Path, e: std::io::Error) -> PersistError {
    PersistError::Io {
        op,
        path: path.display().to_string(),
        kind: e.kind(),
        msg: e.to_string(),
    }
}

/// Fsync a directory so a rename inside it is durable (a no-op on
/// platforms where directories cannot be opened).
pub(crate) fn sync_dir(dir: &std::path::Path) -> Result<(), PersistError> {
    match std::fs::File::open(dir) {
        Ok(d) => d.sync_all().map_err(|e| io_err("fsync dir", dir, e)),
        // Windows cannot open directories; rename durability is weaker
        // there, which the crash harness (unix-only) never relies on.
        Err(_) => Ok(()),
    }
}
