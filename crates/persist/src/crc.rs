//! CRC-32C (Castagnoli), the checksum guarding every WAL record and
//! snapshot body. Software table implementation — no hardware intrinsics,
//! so it behaves identically everywhere the tests run (including Miri).

const POLY: u32 = 0x82F6_3B78; // reflected Castagnoli polynomial

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 appendix B / the iSCSI test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32c(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32c(&copy), base, "flip at {byte}.{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
