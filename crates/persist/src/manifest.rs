//! The directory manifest: the map layout the shard files were written
//! under. Recovery refuses to replay logs into a differently-partitioned
//! map — the same bytes would scatter keys to the wrong shards.

use std::fs;
use std::path::{Path, PathBuf};

use crate::{crc32c, io_err, sync_dir, PersistError, FORMAT_VERSION};

const MAGIC: &[u8; 4] = b"3PMF";
/// magic + version + shards + backend + router + key_space + crc
const LEN: usize = 4 + 4 + 4 + 4 + 4 + 8 + 4;

/// The layout a persistence directory was created under. The `backend`
/// and `router` fields are opaque tags supplied by the sharded layer
/// (this crate never interprets them — it only insists they match on
/// recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Shard count.
    pub shards: u32,
    /// Backend tag (sharded-layer defined).
    pub backend: u32,
    /// Router tag (sharded-layer defined).
    pub router: u32,
    /// Configured key-space bound.
    pub key_space: u64,
}

/// The manifest file inside `dir`.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest")
}

/// Writes `m` as `dir/manifest` (temp file + fsync + atomic rename).
/// Fails with [`PersistError::WouldClobber`] if a manifest already
/// exists.
pub fn write_manifest(dir: &Path, m: &Manifest) -> Result<(), PersistError> {
    let path = manifest_path(dir);
    if path.exists() {
        return Err(PersistError::WouldClobber {
            path: path.display().to_string(),
        });
    }
    let mut buf = Vec::with_capacity(LEN);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&m.shards.to_le_bytes());
    buf.extend_from_slice(&m.backend.to_le_bytes());
    buf.extend_from_slice(&m.router.to_le_bytes());
    buf.extend_from_slice(&m.key_space.to_le_bytes());
    let crc = crc32c(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());

    let tmp = dir.join("manifest.tmp");
    fs::write(&tmp, &buf).map_err(|e| io_err("write manifest", &tmp, e))?;
    let f = fs::File::open(&tmp).map_err(|e| io_err("reopen manifest", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("fsync manifest", &tmp, e))?;
    fs::rename(&tmp, &path).map_err(|e| io_err("rename manifest", &tmp, e))?;
    sync_dir(dir)
}

/// Reads and validates `dir/manifest`. `Ok(None)` when absent.
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, PersistError> {
    let path = manifest_path(dir);
    let buf = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("read manifest", &path, e)),
    };
    let disp = || path.display().to_string();
    if buf.len() != LEN {
        return Err(PersistError::CorruptSnapshot {
            path: disp(),
            reason: "manifest has the wrong length",
        });
    }
    if &buf[0..4] != MAGIC {
        return Err(PersistError::BadMagic { path: disp() });
    }
    let stored_crc = u32::from_le_bytes(buf[LEN - 4..].try_into().unwrap());
    if crc32c(&buf[..LEN - 4]) != stored_crc {
        return Err(PersistError::CorruptSnapshot {
            path: disp(),
            reason: "manifest checksum mismatch",
        });
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::VersionSkew {
            path: disp(),
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(Some(Manifest {
        shards: u32::from_le_bytes(buf[8..12].try_into().unwrap()),
        backend: u32::from_le_bytes(buf[12..16].try_into().unwrap()),
        router: u32::from_le_bytes(buf[16..20].try_into().unwrap()),
        key_space: u64::from_le_bytes(buf[20..28].try_into().unwrap()),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::test_dir;

    #[test]
    fn round_trips_and_rejects_damage() {
        let dir = test_dir("manifest");
        let m = Manifest { shards: 4, backend: 1, router: 0, key_space: 1 << 20 };
        assert_eq!(read_manifest(&dir).unwrap(), None);
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(m));
        // A second write would clobber.
        assert!(matches!(
            write_manifest(&dir, &m),
            Err(PersistError::WouldClobber { .. })
        ));
        // Flip one byte: checksum mismatch, typed error, no panic.
        let path = manifest_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        bytes[9] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_manifest(&dir),
            Err(PersistError::CorruptSnapshot { .. })
        ));
        // A future format version fails closed.
        bytes[9] ^= 0x40;
        bytes[4] = 9;
        let crc = crc32c(&bytes[..LEN - 4]);
        bytes[LEN - 4..].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_manifest(&dir),
            Err(PersistError::VersionSkew { found: 9, .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
