//! Quickstart: a lock-free BST accelerated with the 3-path template.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use threepath::bst::{Bst, BstConfig};
use threepath::core::{PathKind, Strategy};

fn main() {
    // A 3-path tree: HTM fast path, HTM middle path, lock-free fallback.
    let tree = Arc::new(Bst::with_config(BstConfig {
        strategy: Strategy::ThreePath,
        ..BstConfig::default()
    }));

    // Handles are per-thread; operations go through them.
    let mut h = tree.handle();

    // Point operations.
    assert_eq!(h.insert(10, 100), None);
    assert_eq!(h.insert(20, 200), None);
    assert_eq!(h.insert(10, 111), Some(100)); // update returns the old value
    assert_eq!(h.get(10), Some(111));
    assert_eq!(h.remove(20), Some(200));

    // Range queries: all pairs with keys in [lo, hi).
    for k in 0..50 {
        h.insert(k, k * 2);
    }
    let range = h.range_query(10, 15);
    println!("keys in [10, 15): {range:?}");
    assert_eq!(range.len(), 5);

    // Concurrent use: clone the Arc, one handle per thread.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = tree.clone();
            s.spawn(move || {
                let mut h = tree.handle();
                for i in 0..10_000 {
                    let k = 1000 + (i * 37 + t * 13) % 2000;
                    if i % 2 == 0 {
                        h.insert(k, i);
                    } else {
                        h.remove(k);
                    }
                }
            });
        }
    });

    // Quiescent inspection: structural validation and contents.
    let shape = tree.validate().expect("tree invariants hold");
    println!(
        "final tree: {} keys, {} internal nodes, max depth {}",
        shape.keys, shape.internal_nodes, shape.depth_max
    );

    // Path statistics show where operations completed: with no contention
    // and working HTM, almost everything stays on the fast path.
    let stats = h.stats();
    println!(
        "this handle: {:.1}% fast, {:.1}% middle, {:.1}% fallback",
        stats.completed_fraction(PathKind::Fast) * 100.0,
        stats.completed_fraction(PathKind::Middle) * 100.0,
        stats.completed_fraction(PathKind::Fallback) * 100.0,
    );
}
