//! A miniature ordered key-value index on the relaxed (a,b)-tree — the
//! kind of library data structure the paper's introduction motivates
//! (B-tree-like nodes, point lookups, range scans, concurrent writers).
//!
//! Run with: `cargo run --release --example kv_store`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use threepath::abtree::{AbTree, AbTreeConfig};
use threepath::core::{PathKind, Strategy};
use threepath::htm::SplitMix64;

const KEYSPACE: u64 = 100_000;

fn main() {
    let index = Arc::new(AbTree::with_config(AbTreeConfig {
        strategy: Strategy::ThreePath,
        ..AbTreeConfig::default()
    }));

    // Bulk load half the keyspace ("warm" index).
    let t0 = Instant::now();
    {
        let mut h = index.handle();
        let mut rng = SplitMix64::new(42);
        let mut loaded = 0;
        while loaded < KEYSPACE / 2 {
            if h.insert(rng.next_below(KEYSPACE), loaded).is_none() {
                loaded += 1;
            }
        }
    }
    println!(
        "bulk-loaded {} records in {:?}",
        KEYSPACE / 2,
        t0.elapsed()
    );

    // Mixed OLTP-ish phase: 3 writer threads + 1 scanner thread.
    let writes = Arc::new(AtomicU64::new(0));
    let scans = Arc::new(AtomicU64::new(0));
    let scanned_rows = Arc::new(AtomicU64::new(0));
    let t1 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let index = index.clone();
            let writes = writes.clone();
            s.spawn(move || {
                let mut h = index.handle();
                let mut rng = SplitMix64::new(100 + t);
                for i in 0..30_000 {
                    let k = rng.next_below(KEYSPACE);
                    if rng.next_below(2) == 0 {
                        h.insert(k, i);
                    } else {
                        h.remove(k);
                    }
                }
                writes.fetch_add(30_000, Ordering::Relaxed);
            });
        }
        {
            let index = index.clone();
            let scans = scans.clone();
            let scanned_rows = scanned_rows.clone();
            s.spawn(move || {
                let mut h = index.handle();
                let mut rng = SplitMix64::new(7);
                for _ in 0..300 {
                    let lo = rng.next_below(KEYSPACE);
                    // The paper's biased scan-length distribution: mostly
                    // short scans, occasionally very long ones.
                    let x = rng.next_f64();
                    let len = (x * x * 10_000.0) as u64 + 1;
                    let rows = h.range_query(lo, lo + len);
                    scanned_rows.fetch_add(rows.len() as u64, Ordering::Relaxed);
                    scans.fetch_add(1, Ordering::Relaxed);
                }
                let st = h.stats();
                println!(
                    "scanner paths: {:.1}% fast / {:.1}% middle / {:.1}% fallback \
                     (long scans overflow HTM capacity and fall back)",
                    st.completed_fraction(PathKind::Fast) * 100.0,
                    st.completed_fraction(PathKind::Middle) * 100.0,
                    st.completed_fraction(PathKind::Fallback) * 100.0,
                );
            });
        }
    });
    let dt = t1.elapsed();
    println!(
        "mixed phase: {} writes + {} scans ({} rows) in {:?} ({:.0} writes/s)",
        writes.load(Ordering::Relaxed),
        scans.load(Ordering::Relaxed),
        scanned_rows.load(Ordering::Relaxed),
        dt,
        writes.load(Ordering::Relaxed) as f64 / dt.as_secs_f64(),
    );

    let shape = index.validate().expect("index invariants hold");
    println!(
        "index: {} records, {} leaves (b = {}), depth {} — balanced: {} tags, {} underfull",
        shape.keys,
        shape.leaves,
        threepath::abtree::B,
        shape.depth_max,
        shape.tagged,
        shape.underfull
    );
}
