//! A sharded key-value map with pluggable routing and per-shard adaptive
//! strategy: N independent three-path trees, each with its own HTM
//! runtime and reclamation domain.
//!
//! Demonstrates:
//! * range vs hash routing under *clustered* Zipf skew (hot keys packed
//!   into one shard's range) — the load-balance view (`shard_sizes`) and
//!   throughput show why the router is a policy worth choosing;
//! * cross-shard range queries — an ordered concatenation under the
//!   range router, a sort-merge under the hash router;
//! * the per-shard probing controller measuring TLE against 3-path on
//!   each shard's own live traffic — the abort-heavy shard's storm shows
//!   up in its observed abort mix, and every shard settles on whichever
//!   strategy empirically completes more operations there.
//!
//! Run with: `cargo run --release --example sharded_kv`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use threepath::core::{PathKind, Strategy};
use threepath::htm::{HtmConfig, SplitMix64};
use threepath::sharded::{
    AdaptiveConfig, RouterKind, ShardBackend, ShardedConfig, ShardedMap,
};
use threepath::workload::KeyDist;

const KEY_SPACE: u64 = 1 << 16;
const WRITERS: u64 = 4;
const OPS_PER_WRITER: u64 = 40_000;
const SHARDS: usize = 8;

fn run(router: RouterKind) -> (f64, Arc<ShardedMap>) {
    let map = Arc::new(
        ShardedMap::with_config(ShardedConfig {
            shards: SHARDS,
            backend: ShardBackend::AbTree,
            key_space: KEY_SPACE,
            router,
            ..ShardedConfig::default()
        })
        .expect("valid config"),
    );
    // Clustered Zipf: the hot ranks ARE the low keys, so under range
    // partitioning nearly all traffic lands in shard 0.
    let skew = KeyDist::Zipf { theta: 0.9 }.sampler(KEY_SPACE);
    let fast_ops = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let map = map.clone();
            let fast_ops = fast_ops.clone();
            let skew = &skew;
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SplitMix64::new(0xC0FFEE + t);
                for i in 0..OPS_PER_WRITER {
                    let k = skew.sample(&mut rng);
                    if rng.next_below(2) == 0 {
                        h.insert(k, i);
                    } else {
                        h.remove(k);
                    }
                }
                // Merged across every shard this thread touched.
                fast_ops.fetch_add(h.stats().completed(PathKind::Fast), Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    let throughput = (WRITERS * OPS_PER_WRITER) as f64 / elapsed.as_secs_f64();
    let sizes = map.shard_sizes();
    println!(
        "{router:>5} router: {throughput:>12.0} ops/s  (fast-path ops: {}, max/min shard: {}/{})",
        fast_ops.load(Ordering::Relaxed),
        sizes.iter().max().unwrap(),
        sizes.iter().min().unwrap(),
    );
    (throughput, map)
}

fn adaptive_demo() {
    println!("\nadaptive: shard 2 aborts ~95% of transactions; the rest are clean");
    let map = Arc::new(
        ShardedMap::with_config(ShardedConfig {
            shards: 4,
            backend: ShardBackend::Bst,
            key_space: 4096,
            strategy: Strategy::ThreePath,
            adaptive: Some(AdaptiveConfig {
                sample_every: 32,
                epoch_ops: 512,
                ..AdaptiveConfig::default()
            }),
            htm_overrides: vec![(2, HtmConfig::default().with_spurious(0.95))],
            ..ShardedConfig::default()
        })
        .expect("valid config"),
    );
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = map.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SplitMix64::new(t * 71 + 3);
                for i in 0..20_000u64 {
                    let k = rng.next_below(4096);
                    if rng.next_below(2) == 0 {
                        h.insert(k, i);
                    } else {
                        h.remove(k);
                    }
                }
            });
        }
    });
    let ctl = map.adaptive().expect("adaptive map");
    for s in 0..4 {
        let (ops, aborts) = ctl.observed(s);
        println!(
            "  shard {s}: settled {:<9?} (windows {}, probes {}, observed {ops} ops / {aborts} aborts)",
            ctl.settled_strategy_of(s),
            ctl.epochs(s),
            ctl.controller_of(s).switches(),
        );
    }
    // What the prober guarantees: every shard turned decision windows
    // and measured the alternative; the storm shows up exactly where it
    // was injected. Which strategy wins is the measurement's call.
    for s in 0..4 {
        assert!(ctl.epochs(s) > 0 && ctl.controller_of(s).switches() > 0);
    }
    let (hot_ops, hot_aborts) = ctl.observed(2);
    assert!(hot_aborts > hot_ops, "the storm is visible on shard 2");
    map.validate().expect("every shard structurally valid");
}

fn main() {
    println!(
        "clustered-zipf 50/50 insert/remove, {WRITERS} writers, {SHARDS} shards, key space {KEY_SPACE}"
    );
    let (range, _) = run(RouterKind::Range);
    let (hash, map) = run(RouterKind::Hash);
    println!("hash vs range under clustered skew: {:.2}x", hash / range);

    // Cross-shard range query: a sort-merge of per-shard snapshots under
    // the hash router (the range router would concatenate in order).
    let mut h = map.handle();
    let mid = KEY_SPACE / 2;
    let window = h.range_query(mid - 512, mid + 512);
    assert!(window.windows(2).all(|w| w[0].0 < w[1].0), "merge is ordered");
    println!(
        "range [{}, {}): {} keys sort-merged from {} shards",
        mid - 512,
        mid + 512,
        window.len(),
        map.shard_count(),
    );
    map.validate().expect("every shard structurally valid");
    println!("final: {} keys, key_sum {}", map.len(), map.key_sum());

    adaptive_demo();
}
