//! A sharded key-value map: N independent three-path trees, each with its
//! own HTM runtime and reclamation domain, partitioned by key range.
//!
//! Demonstrates cross-shard range queries (ordered per-shard merges),
//! aggregated path statistics, and the throughput effect of sharding under
//! a zipfian-like popularity skew.
//!
//! Run with: `cargo run --release --example sharded_kv`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use threepath::core::PathKind;
use threepath::htm::SplitMix64;
use threepath::sharded::{ShardBackend, ShardedConfig, ShardedMap};
use threepath::workload::KeyDist;

const KEY_SPACE: u64 = 1 << 16;
const WRITERS: u64 = 4;
const OPS_PER_WRITER: u64 = 40_000;

fn run(shards: usize) -> (f64, Arc<ShardedMap>) {
    let map = Arc::new(ShardedMap::with_config(ShardedConfig {
        shards,
        backend: ShardBackend::AbTree,
        key_space: KEY_SPACE,
        ..ShardedConfig::default()
    }));
    let skew = KeyDist::Skewed { exponent: 3.0 };
    let fast_ops = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let map = map.clone();
            let fast_ops = fast_ops.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SplitMix64::new(0xC0FFEE + t);
                for i in 0..OPS_PER_WRITER {
                    let k = skew.sample(&mut rng, KEY_SPACE);
                    if rng.next_below(2) == 0 {
                        h.insert(k, i);
                    } else {
                        h.remove(k);
                    }
                }
                // Merged across every shard this thread touched.
                fast_ops.fetch_add(h.stats().completed(PathKind::Fast), Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();
    let throughput = (WRITERS * OPS_PER_WRITER) as f64 / elapsed.as_secs_f64();
    println!(
        "{shards:>2} shard(s): {throughput:>12.0} ops/s  (fast-path ops: {}, sizes: {:?})",
        fast_ops.load(Ordering::Relaxed),
        map.shard_sizes()
    );
    (throughput, map)
}

fn main() {
    println!("skewed 50/50 insert/remove, {WRITERS} writers, key space {KEY_SPACE}");
    let (one, _) = run(1);
    run(2);
    run(4);
    let (eight, map) = run(8);
    println!("8 shards vs 1: {:.2}x", eight / one);

    // Cross-shard range query: an ordered merge of per-shard snapshots.
    let mut h = map.handle();
    let mid = KEY_SPACE / 2;
    let window = h.range_query(mid - 512, mid + 512);
    assert!(window.windows(2).all(|w| w[0].0 < w[1].0), "merge is ordered");
    println!(
        "range [{}, {}): {} keys spanning shards {}..={}",
        mid - 512,
        mid + 512,
        window.len(),
        map.shard_of(mid - 512),
        map.shard_of(mid + 511),
    );
    map.validate().expect("every shard structurally valid");
    println!("final: {} keys, key_sum {}", map.len(), map.key_sum());
}
