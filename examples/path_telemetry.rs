//! Watching the three execution paths do their job (the story of the
//! paper's Figure 1): under a light workload everything runs on the
//! uninstrumented fast path; when long-running operations start falling
//! back, 3-path keeps hardware transactions flowing on the middle path
//! while TLE-style designs would serialize.
//!
//! Run with: `cargo run --release --example path_telemetry`

use std::time::Duration;

use threepath::core::{PathKind, Strategy};
use threepath::workload::{run_trial, Structure, TrialSpec, Workload};

fn show(label: &str, spec: &TrialSpec) {
    let r = run_trial(spec);
    assert!(r.keysum_ok, "key-sum verification failed");
    println!(
        "{label:<28} {:>10.0} ops/s | paths: {:>5.1}% fast {:>5.1}% middle {:>6.2}% fallback",
        r.throughput,
        r.path_fraction(PathKind::Fast) * 100.0,
        r.path_fraction(PathKind::Middle) * 100.0,
        r.path_fraction(PathKind::Fallback) * 100.0,
    );
    let fast_aborts = r.stats.aborts(PathKind::Fast);
    let mid_aborts = r.stats.aborts(PathKind::Middle);
    println!(
        "{:<28} aborts fast: {} conflict / {} capacity / {} explicit; middle: {} total",
        "",
        fast_aborts.conflict,
        fast_aborts.capacity,
        fast_aborts.explicit,
        mid_aborts.total(),
    );
}

fn main() {
    let base = TrialSpec {
        structure: Structure::AbTree,
        threads: 4,
        duration: Duration::from_millis(400),
        key_range: 50_000,
        ..TrialSpec::default()
    };

    println!("== light workload (all threads 50% insert / 50% delete) ==");
    for strategy in [Strategy::ThreePath, Strategy::Tle, Strategy::TwoPathCon, Strategy::NonHtm] {
        let spec = TrialSpec {
            strategy,
            workload: Workload::Light,
            ..base.clone()
        };
        show(&strategy.to_string(), &spec);
    }

    println!();
    println!("== heavy workload (one thread runs 100% large range queries) ==");
    for strategy in [Strategy::ThreePath, Strategy::Tle, Strategy::TwoPathCon, Strategy::NonHtm] {
        let spec = TrialSpec {
            strategy,
            workload: Workload::Heavy { rq_extent: 10_000 },
            ..base.clone()
        };
        show(&strategy.to_string(), &spec);
    }

    println!();
    println!(
        "Reading the tea leaves: in the heavy workload the big range queries blow the\n\
         HTM capacity and land on the software path. Under TLE that serializes every\n\
         update behind a global lock; under 3-path updates keep committing on the\n\
         middle path (look at the middle-path percentage), which is the paper's point."
    );
}
