//! A tour of the substrates' public APIs: simulated HTM transactions,
//! LLX/SCX, k-CAS, and RCU — the building blocks behind the trees.
//!
//! Run with: `cargo run --release --example primitives_tour`

use std::sync::Arc;

use threepath::htm::{HtmConfig, HtmRuntime, TxCell};
use threepath::kcas::{KcasEntry, KcasHeap};
use threepath::llxscx::{LlxResult, ScxArgs, ScxEngine, ScxHeader};
use threepath::rcu::RcuDomain;
use threepath::reclaim::{Domain, ReclaimMode};

fn main() {
    // ---------------------------------------------------------------
    // 1. Best-effort HTM: transactions that may abort and report why.
    // ---------------------------------------------------------------
    let rt = Arc::new(HtmRuntime::new(HtmConfig::default()));
    let mut th = rt.register_thread();
    let (a, b) = (TxCell::new(5), TxCell::new(10));
    let sum = rt
        .attempt(&mut th, |tx| {
            let x = tx.read(&a)?;
            let y = tx.read(&b)?;
            tx.write(&a, y)?;
            tx.write(&b, x)?;
            Ok(x + y)
        })
        .expect("uncontended transaction commits");
    println!("htm: swapped atomically, sum = {sum}");
    assert_eq!((a.load_direct(&rt), b.load_direct(&rt)), (10, 5));

    // ---------------------------------------------------------------
    // 2. LLX/SCX: snapshot a Data-record, then atomically swing a field
    //    and finalize nodes — the primitive behind the tree template.
    // ---------------------------------------------------------------
    let domain = Arc::new(Domain::new(ReclaimMode::Epoch));
    let eng = ScxEngine::new(rt.clone(), domain.clone());
    let mut sth = eng.register_thread();
    struct Rec {
        hdr: ScxHeader,
        fields: [TxCell; 2],
    }
    let rec = Rec {
        hdr: ScxHeader::new(),
        fields: [TxCell::new(1), TxCell::new(2)],
    };
    sth.pinned(|sth| {
        let h = match eng.llx(sth, &rec.hdr, &rec.fields) {
            LlxResult::Snapshot(h) => h,
            other => panic!("fresh record must snapshot, got {other:?}"),
        };
        println!("llx snapshot: {:?}", h.snapshot().as_slice());
        let ok = eng.scx(
            sth,
            &ScxArgs {
                v: &[&h],
                r_mask: 0,
                fld: &rec.fields[0],
                old: h.snapshot().get(0),
                new: 42,
            },
        );
        assert!(ok, "uncontended SCX succeeds");
    });
    println!("scx: field now {}", rec.fields[0].load_direct(&rt));

    // ---------------------------------------------------------------
    // 3. k-CAS: atomically update several words (software descriptors,
    //    or a single transaction on the HTM path).
    // ---------------------------------------------------------------
    let heap = KcasHeap::new(rt.clone(), domain);
    let kth = heap.register_thread();
    let (x, y, z) = (TxCell::new(0), TxCell::new(4), TxCell::new(8));
    kth.reclaim.enter();
    let ok = heap.kcas(
        &kth,
        &[
            KcasEntry { cell: &x, exp: 0, new: 100 },
            KcasEntry { cell: &y, exp: 4, new: 104 },
            KcasEntry { cell: &z, exp: 8, new: 108 },
        ],
    );
    println!(
        "kcas: {} -> ({}, {}, {})",
        ok,
        heap.read(&kth, &x),
        heap.read(&kth, &y),
        heap.read(&kth, &z)
    );
    kth.reclaim.exit();

    // ---------------------------------------------------------------
    // 4. RCU: read-side critical sections and grace periods.
    // ---------------------------------------------------------------
    let rcu = Arc::new(RcuDomain::new());
    let rth = rcu.register();
    {
        let _read_side = rth.read_lock();
        // ... traverse an RCU-protected structure ...
    }
    rcu.synchronize(); // waits for all pre-existing readers
    println!("rcu: {} grace periods elapsed", rcu.grace_periods());
}
