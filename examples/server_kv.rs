//! Serving front-end: batched submission through per-shard queues.
//!
//! The other examples drive trees *directly* — every thread executes its
//! own operations, one transaction each. This one stands a `KvServer` in
//! front of a sharded map: clients compile batches into per-shard groups,
//! enqueue them, and whichever client claims a shard's combiner role
//! coalesces queued groups into single-transaction batch plans (and flat-
//! combines more work while holding the fallback lock).
//!
//! Run with: `cargo run --release --example server_kv`

use std::sync::Arc;

use threepath::core::{BatchOp, Strategy};
use threepath::server::{KvServer, ServerConfig};
use threepath::sharded::{ShardedConfig, ShardedMap};

fn main() {
    // A batched sharded map: `batched: true` enables the trees' batch
    // entry point, which the server requires.
    let map = Arc::new(
        ShardedMap::with_config(ShardedConfig {
            shards: 4,
            key_space: 10_000,
            strategy: Strategy::ThreePath,
            batched: true,
            ..ShardedConfig::default()
        })
        .expect("valid config"),
    );
    let srv = Arc::new(KvServer::new(Arc::clone(&map), ServerConfig::default()).expect("batched map"));

    // Single operations work, but pay a queue hop each — the server is
    // built for batches.
    let mut c = srv.client();
    assert_eq!(c.insert(7, 70), None);
    assert_eq!(c.get(7), Some(70));

    // A mixed batch: replies come back in submission order, and each
    // shard's slice of the batch commits atomically (one group, one
    // plan — never split).
    let replies = c.submit(vec![
        BatchOp::Insert(7, 77),
        BatchOp::Insert(2_500, 25),
        BatchOp::Get(7),
        BatchOp::Remove(9_999),
    ]);
    assert_eq!(replies, vec![Some(70), None, Some(77), None]);

    // Closed-loop clients: every thread is a submitter AND a potential
    // combiner — there are no dedicated executor threads to starve. Each
    // thread hands back its handle's path statistics (stats live on
    // handles, merged across the shards the thread touched).
    let stats = std::thread::scope(|s| {
        let joins: Vec<_> = (0..4u64)
            .map(|t| {
                let srv = Arc::clone(&srv);
                s.spawn(move || {
                    let mut c = srv.client();
                    for i in 0..2_000u64 {
                        let base = (i * 37 + t * 1_009) % 9_000;
                        // An 8-op same-shard-leaning batch: the combiner
                        // coalesces these into few transactions.
                        let ops: Vec<BatchOp> = (0..8)
                            .map(|j| {
                                let k = base + j;
                                if (i + j) % 2 == 0 {
                                    BatchOp::Insert(k, i)
                                } else {
                                    BatchOp::Remove(k)
                                }
                            })
                            .collect();
                        let replies = c.submit(ops);
                        assert_eq!(replies.len(), 8);
                    }
                    c.stats()
                })
            })
            .collect();
        let mut merged = threepath::core::PathStats::new();
        for j in joins {
            merged.merge(&j.join().unwrap());
        }
        merged
    });

    // Cross-shard range queries pipeline per-shard sub-scans through the
    // same queues and stitch the runs back in key order.
    let mut c = srv.client();
    let snapshot = c.range_query(0, 10_000);
    assert!(snapshot.windows(2).all(|w| w[0].0 < w[1].0), "sorted, deduped");

    // The batch lane of the path statistics shows the amortization: how
    // many operations rode how many transactions.
    println!("keys now resident: {}", map.len());
    println!(
        "batches: {} ({} ops in {} transactions, mean batch {:.2}, {} flat-combined)",
        stats.batches(),
        stats.batch_ops(),
        stats.batch_txns(),
        stats.mean_batch_size(),
        stats.combined_ops(),
    );
    map.validate().expect("shard invariants hold");
}
