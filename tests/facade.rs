//! Workspace-level integration: the facade's re-exports compose, and every
//! data structure runs correctly under every strategy through the public
//! API.

use std::sync::Arc;

use threepath::abtree::{AbTree, AbTreeConfig};
use threepath::bst::{Bst, BstConfig};
use threepath::core::Strategy;
use threepath::htm::SplitMix64;
use threepath::hybridnorec::HnBst;
use threepath::kcas::KcasList;
use threepath::rcu::Citrus;

#[test]
fn every_strategy_works_on_both_template_trees() {
    for strategy in Strategy::ALL {
        let bst = Arc::new(Bst::with_config(BstConfig {
            strategy,
            ..BstConfig::default()
        }));
        let ab = Arc::new(AbTree::with_config(AbTreeConfig {
            strategy,
            ..AbTreeConfig::default()
        }));
        let mut hb = bst.handle();
        let mut ha = ab.handle();
        let mut rng = SplitMix64::new(strategy as u64 + 1);
        for i in 0..600u64 {
            let k = rng.next_below(100);
            match rng.next_below(4) {
                0 | 1 => {
                    assert_eq!(hb.insert(k, i), ha.insert(k, i), "{strategy} ins {k}");
                }
                2 => {
                    assert_eq!(hb.remove(k), ha.remove(k), "{strategy} rem {k}");
                }
                _ => {
                    assert_eq!(hb.get(k), ha.get(k), "{strategy} get {k}");
                    assert_eq!(
                        hb.range_query(k, k + 10),
                        ha.range_query(k, k + 10),
                        "{strategy} rq {k}"
                    );
                }
            }
        }
        drop((hb, ha));
        assert_eq!(bst.collect(), ab.collect(), "{strategy} final contents");
        bst.validate().unwrap();
        ab.validate().unwrap();
    }
}

#[test]
fn all_five_map_implementations_agree() {
    // BST, (a,b)-tree, CITRUS, k-CAS list and the Hybrid NOrec BST all
    // implement the same map semantics (the k-CAS list uses set-style
    // inserts, handled below).
    let bst = Arc::new(Bst::new());
    let ab = Arc::new(AbTree::new());
    let cit = Arc::new(Citrus::new());
    let list = Arc::new(KcasList::new());
    let hn = Arc::new(HnBst::new());

    let mut hb = bst.handle();
    let mut ha = ab.handle();
    let mut hc = cit.handle();
    let mut hl = list.handle();
    let mut hh = hn.handle();

    let mut rng = SplitMix64::new(99);
    for i in 0..800u64 {
        let k = 1 + rng.next_below(120);
        match rng.next_below(3) {
            0 => {
                let prev = hb.insert(k, i);
                assert_eq!(ha.insert(k, i), prev);
                assert_eq!(hc.insert(k, i), prev);
                assert_eq!(hh.insert(k, i), prev);
                // Set semantics: inserts succeed iff the key was absent.
                assert_eq!(hl.insert(k, i), prev.is_none());
            }
            1 => {
                let prev = hb.remove(k);
                assert_eq!(ha.remove(k), prev);
                assert_eq!(hc.remove(k), prev);
                assert_eq!(hh.remove(k), prev);
                assert_eq!(hl.remove(k).is_some(), prev.is_some());
            }
            _ => {
                let got = hb.get(k);
                assert_eq!(ha.get(k), got);
                assert_eq!(hc.get(k), got);
                assert_eq!(hh.get(k), got);
                assert_eq!(hl.get(k).is_some(), got.is_some());
            }
        }
    }
    drop((hb, ha, hc, hl, hh));
    let keys: Vec<u64> = bst.collect().iter().map(|(k, _)| *k).collect();
    assert_eq!(
        ab.collect().iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        keys
    );
    assert_eq!(
        cit.collect().iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        keys
    );
    assert_eq!(
        list.collect().iter().map(|(k, _)| *k).collect::<Vec<_>>(),
        keys
    );
}

#[test]
fn workload_runner_round_trip_through_facade() {
    use std::time::Duration;
    use threepath::workload::{run_trial, Structure, TrialSpec, Workload};
    for structure in [Structure::Bst, Structure::AbTree] {
        let r = run_trial(&TrialSpec {
            structure,
            strategy: Strategy::ThreePath,
            threads: 3,
            duration: Duration::from_millis(40),
            key_range: 512,
            workload: Workload::Heavy { rq_extent: 128 },
            ..TrialSpec::default()
        });
        assert!(r.keysum_ok);
        assert!(r.update_ops > 0 && r.rq_ops > 0);
    }
}
