//! Helpers shared by the concurrent integration-test binaries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Raises the stop flag when dropped — including on panic — so a failed
/// assertion in a checker thread stops the updater loops and surfaces as a
/// test failure instead of a scope that never joins.
pub struct StopOnDrop(pub Arc<AtomicBool>);

impl Drop for StopOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Relaxed);
    }
}
