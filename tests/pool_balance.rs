//! Allocation-balance stress tests for the node pool: after concurrent
//! churn on either backend, the pool's hand-out counters must reconcile
//! exactly with the reclamation domain's retire/free totals and the live
//! node count — any leak (a hand-out nobody accounts for) or double-free
//! (an accounting entry without a hand-out) breaks the equations.
//!
//! Two conservation laws, both over counters folded into the domain once
//! every context has dropped:
//!
//! 1. **Node balance** — every hand-out ends in exactly one state:
//!    `alloc_total == unpublished_returns + retired_pooled + live_nodes`
//!    (still reachable, returned by the tx-abort/failed-SCX undo path, or
//!    retired into the epoch machinery — which later recycles it, making
//!    the next hand-out a new entry on the left side).
//! 2. **Block conservation** — free-list population is pure flow:
//!    `orphan_chain_blocks == carved + recycled + unpublished − alloc_total`
//!    (adopted blocks cancel: each adoption removes what an earlier drop
//!    parked).
//!
//! The file is multi-threaded, so it rides in the `stress-tests` lane like
//! `tests/concurrent.rs`.
#![cfg(feature = "stress-tests")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

mod common;
use common::StopOnDrop;

use threepath::abtree::{AbTree, AbTreeConfig};
use threepath::bst::{Bst, BstConfig};
use threepath::core::Strategy;
use threepath::htm::{HtmConfig, SplitMix64};
use threepath::reclaim::{Domain, PoolStats};

const KEY_RANGE: u64 = 512;

/// Asserts both conservation laws. `live_nodes` counts every reachable
/// node, sentinels/entry included.
fn assert_balanced(s: &PoolStats, domain: &Domain, live_nodes: u64, label: &str) {
    assert!(s.alloc_total > 0, "{label}: pool never used");
    assert!(
        s.pool_hits > 0,
        "{label}: churn must recycle (no hand-out ever hit a warm list)"
    );
    assert_eq!(
        s.alloc_total,
        s.unpublished_returns + s.retired_pooled + live_nodes,
        "{label}: node balance broken (leak or double-account): {s:?}, live {live_nodes}"
    );
    assert_eq!(
        domain.orphan_chain_blocks(),
        s.carved_blocks + s.recycled + s.unpublished_returns - s.alloc_total,
        "{label}: block conservation broken: {s:?}"
    );
    // Pooled retirements either already recycled or still in limbo.
    assert!(
        s.recycled <= s.retired_pooled,
        "{label}: more recycles than retirements: {s:?}"
    );
    // The domain's totals cover the pooled subset.
    assert!(domain.retired_total() >= s.retired_pooled, "{label}");
    assert!(domain.freed_total() >= s.recycled, "{label}");
}

/// Concurrent insert/remove churn through every execution path (seeded
/// spurious aborts force fast-, middle- and fallback-path traffic, so the
/// tx-abort undo, failed-SCX undo and epoch-recycle flows all run).
fn churn<H>(threads: usize, ops_per_thread: u64, mut handle: impl FnMut() -> H + Send)
where
    H: Churn + Send,
{
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let _guard = StopOnDrop(stop.clone());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut h = handle();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut rng = SplitMix64::new(0xBA1A_5CE0 + t as u64);
                    for _ in 0..ops_per_thread {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let k = rng.next_below(KEY_RANGE);
                        if rng.next_below(2) == 0 {
                            h.insert(k, k);
                        } else {
                            h.remove(k);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

trait Churn {
    fn insert(&mut self, k: u64, v: u64);
    fn remove(&mut self, k: u64);
}

impl Churn for threepath::bst::BstHandle {
    fn insert(&mut self, k: u64, v: u64) {
        threepath::bst::BstHandle::insert(self, k, v);
    }
    fn remove(&mut self, k: u64) {
        threepath::bst::BstHandle::remove(self, k);
    }
}

impl Churn for threepath::abtree::AbTreeHandle {
    fn insert(&mut self, k: u64, v: u64) {
        threepath::abtree::AbTreeHandle::insert(self, k, v);
    }
    fn remove(&mut self, k: u64) {
        threepath::abtree::AbTreeHandle::remove(self, k);
    }
}

#[test]
fn bst_pool_counters_reconcile_after_concurrent_churn() {
    let tree = Arc::new(Bst::with_config(BstConfig {
        strategy: Strategy::ThreePath,
        htm: HtmConfig::default().with_spurious(0.15),
        ..BstConfig::default()
    }));
    churn(4, 4000, || tree.handle());
    let shape = tree.validate().expect("valid tree");
    let live = (shape.internal_nodes + shape.leaves) as u64;
    assert_balanced(&tree.pool_stats(), tree.domain(), live, "bst");
    let s = tree.pool_stats();
    assert!(
        s.unpublished_returns > 0,
        "spurious aborts must exercise the tx-abort undo path: {s:?}"
    );
    assert!(s.recycled > 0, "epoch expiry must recycle: {s:?}");
}

#[test]
fn abtree_pool_counters_reconcile_after_concurrent_churn() {
    let tree = Arc::new(AbTree::with_config(AbTreeConfig {
        strategy: Strategy::ThreePath,
        htm: HtmConfig::default().with_spurious(0.15),
        ..AbTreeConfig::default()
    }));
    churn(4, 3000, || tree.handle());
    let shape = tree.validate().expect("valid tree");
    // +1: the entry node, which validate() does not count.
    let live = (shape.internal_nodes + shape.leaves + 1) as u64;
    assert_balanced(&tree.pool_stats(), tree.domain(), live, "abtree");
}

/// The (a,b)-tree registers a dedicated exact-fit size class for its fat
/// nodes (per-structure class tables, ROADMAP PR 4 follow-up): the block
/// serving a node wastes less than one cache line, and the pool's
/// counters still reconcile when traffic flows through that class.
#[test]
fn abtree_nodes_get_a_dedicated_exact_fit_class() {
    let tree = Arc::new(AbTree::with_config(AbTreeConfig {
        strategy: Strategy::ThreePath,
        ..AbTreeConfig::default()
    }));
    // `AbNode` is private; its blocks are what `alloc_total` counts, and
    // the domain exposes the serving block size through the tree's churn.
    // Probe the class geometry via a churn that only allocates nodes.
    {
        let mut h = tree.handle();
        let mut rng = SplitMix64::new(42);
        for i in 0..4000u64 {
            let k = rng.next_below(KEY_RANGE);
            if i % 2 == 0 {
                h.insert(k, k);
            } else {
                h.remove(k);
            }
        }
    }
    let s = tree.pool_stats();
    assert!(s.alloc_total > 0, "churn must allocate nodes");
    let shape = tree.validate().expect("valid tree");
    let live = (shape.internal_nodes + shape.leaves + 1) as u64;
    assert_balanced(&s, tree.domain(), live, "abtree dedicated class");
    // The exact-fit guarantee: the block size serving the node type is
    // within one cache line of the node size. `node_block_size` reports
    // (block size, node size) straight from the tree's domain.
    let (block, node) = tree.node_block_size().expect("pooled tree");
    assert!(
        block >= node && block - node < 64,
        "dedicated class must be line-exact: block {block} B for {node} B nodes"
    );
    assert_eq!(block % 64, 0, "blocks stay cache-line multiples");
}

/// Counter-based proof that the tx-abort undo path returns nodes to the
/// pool: single-threaded, no contention, spurious aborts only — every
/// doomed transaction aborts at commit, *after* the operation body
/// allocated its nodes, so each such abort must produce unpublished
/// returns (and no leak: the balance still closes exactly).
#[test]
fn tx_abort_undo_returns_nodes_to_the_pool() {
    let tree = Arc::new(Bst::with_config(BstConfig {
        strategy: Strategy::ThreePath,
        htm: HtmConfig::default().with_spurious(0.5),
        ..BstConfig::default()
    }));
    {
        let mut h = tree.handle();
        let mut rng = SplitMix64::new(7);
        for i in 0..6000u64 {
            let k = rng.next_below(KEY_RANGE);
            if i % 2 == 0 {
                h.insert(k, i);
            } else {
                h.remove(k);
            }
        }
    }
    let s = tree.pool_stats();
    assert!(
        s.unpublished_returns > 0,
        "aborted transactions allocated nodes; the undo path must return \
         them to the pool: {s:?}"
    );
    let shape = tree.validate().expect("valid tree");
    let live = (shape.internal_nodes + shape.leaves) as u64;
    assert_balanced(&s, tree.domain(), live, "tx-abort");
}

/// The pool-off baseline must keep `Box` semantics end to end: zero pool
/// traffic, identical tree behaviour.
#[test]
fn pool_off_baseline_reports_zero_pool_traffic() {
    let tree = Arc::new(Bst::with_config(BstConfig {
        strategy: Strategy::ThreePath,
        pool: false,
        ..BstConfig::default()
    }));
    {
        let mut h = tree.handle();
        for k in 0..200u64 {
            h.insert(k, k);
        }
        for k in (0..200u64).step_by(2) {
            h.remove(k);
        }
        assert_eq!(tree_len(&tree), 100);
    }
    let s = tree.pool_stats();
    assert_eq!(s, PoolStats::default(), "pool-off trees must not pool: {s:?}");
    assert!(tree.domain().retired_total() > 0, "churn still retires");
}

fn tree_len(tree: &Bst) -> usize {
    tree.validate().expect("valid tree").keys
}
