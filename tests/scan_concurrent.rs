//! Concurrent correctness of the optimistic multi-leaf scan path: range
//! scanners race updaters on both backends, under every strategy, with
//! injected spurious aborts — the regime where the `run_op` scan baseline
//! collapses onto the serialized fallback paths and the validation-set
//! scan must stay linearizable *without any transactions*.
//!
//! Invariants (all interleaving-independent):
//!
//! * **Quiescent-prefix oracle** — a key prefix populated before the
//!   stress and never updated again must appear in every scan exactly
//!   (same keys, same sum), whatever races hit the rest of the range.
//! * **Torn couples** — updaters write key couples right-endpoint-first
//!   and remove left-first, so any atomic snapshot satisfies "left
//!   present ⇒ right present"; a scan stitched from two instants would
//!   tear one.
//! * **Value determinism** — churn keys only ever hold `f(key)`; a torn
//!   leaf read would surface as a foreign value.
//! * **Stats discipline** — scanner handles complete on the read lane
//!   only; the sole exception is a terminal scan escalation, which is
//!   itself counted, so `fast + middle + fallback == scan_escalations`.
//!
//! Multi-threaded, so the file rides in the default-on `stress-tests`
//! lane like `tests/read_concurrent.rs`.
#![cfg(feature = "stress-tests")]

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

mod common;
use common::StopOnDrop;

use threepath::core::{PathKind, PathStats, Strategy};
use threepath::htm::{HtmConfig, SplitMix64};
use threepath::sharded::{RouterKind, ShardBackend, ShardTree, ShardedConfig, ShardedMap};
use threepath::workload::{run_trial, Structure, TrialSpec, Workload};

/// Whole key space; see the region map in [`race`].
const KEY_SPACE: u64 = 512;
/// `[0, PREFIX)` is written once and never updated again.
const PREFIX: u64 = 128;

fn expected_value(k: u64) -> u64 {
    k.wrapping_mul(3).wrapping_add(1)
}

/// Non-read-lane completions must be exactly the terminal scan
/// escalations — everything else ran transaction-free.
fn assert_scanner_stats(stats: &PathStats, backend: ShardBackend) {
    assert!(
        stats.completed(PathKind::Read) > 0,
        "{backend}: scanner never used the read lane"
    );
    assert!(
        stats.scan_leaves_validated() > 0,
        "{backend}: scans validated no leaves"
    );
    let non_read: u64 = [PathKind::Fast, PathKind::Middle, PathKind::Fallback]
        .iter()
        .map(|&p| stats.completed(p))
        .sum();
    assert_eq!(
        non_read,
        stats.scan_escalations(),
        "{backend}: scans completed off the read lane without an escalation"
    );
}

/// Builds the quiescent prefix (every other key in `[0, PREFIX)`) and
/// returns its oracle key set.
fn prefill_prefix(h: &mut impl FnMut(u64, u64) -> Option<u64>) -> BTreeSet<u64> {
    let mut oracle = BTreeSet::new();
    for k in (0..PREFIX).step_by(2) {
        assert_eq!(h(k, expected_value(k)), None);
        oracle.insert(k);
    }
    oracle
}

/// Checks one scan result against all interleaving-independent oracles.
fn check_scan(out: &[(u64, u64)], lo: u64, hi: u64, oracle: &BTreeSet<u64>, tag: &str) {
    assert!(
        out.windows(2).all(|w| w[0].0 < w[1].0),
        "{tag}: scan output must be sorted and duplicate-free"
    );
    assert!(
        out.iter().all(|&(k, _)| k >= lo && k < hi),
        "{tag}: scan leaked keys outside [{lo}, {hi})"
    );
    // Quiescent prefix: exact match wherever the window covers it.
    let want: BTreeSet<u64> = if lo < PREFIX {
        oracle.range(lo..hi.min(PREFIX)).copied().collect()
    } else {
        BTreeSet::new()
    };
    let got: BTreeSet<u64> = out.iter().map(|&(k, _)| k).filter(|&k| k < PREFIX).collect();
    assert_eq!(got, want, "{tag}: quiescent prefix diverged");
    for &(k, v) in out {
        if !(PREFIX..3 * PREFIX).contains(&k) {
            // Prefix and plain-churn regions are value-deterministic;
            // the couple region [PREFIX, 3*PREFIX) stores couple ids.
            assert_eq!(v, expected_value(k), "{tag}: torn or foreign value for {k}");
        }
    }
    // Torn couples: (2c, 2c+1) in the couple region are written
    // right-first / removed left-first, so left ⇒ right in any atomic
    // snapshot. Only check couples fully inside the window.
    let keys: BTreeSet<u64> = out
        .iter()
        .map(|&(k, _)| k)
        .filter(|&k| (PREFIX..3 * PREFIX).contains(&k))
        .collect();
    for &k in &keys {
        if k % 2 == 0 && k + 1 < hi {
            assert!(
                keys.contains(&(k + 1)),
                "{tag}: torn couple — {k} present without {}",
                k + 1
            );
        }
    }
}

/// Scanners race updaters on one tree of `backend` under `strategy` with
/// spurious aborts injected. Key-space regions: `[0, 128)` quiescent
/// prefix, `[128, 384)` couples, `[384, 512)` value-deterministic churn.
fn race(backend: ShardBackend, strategy: Strategy) {
    let tree = ShardTree::build(&ShardedConfig {
        backend,
        strategy,
        key_space: KEY_SPACE,
        htm: HtmConfig::default().with_spurious(0.4).with_seed(13),
        ..ShardedConfig::default()
    });
    let oracle = {
        let mut h = tree.handle();
        prefill_prefix(&mut |k, v| h.insert(k, v))
    };
    let stop = Arc::new(AtomicBool::new(false));
    let delta = Arc::new(AtomicI64::new(0));
    std::thread::scope(|s| {
        let _guard = StopOnDrop(stop.clone());
        let mut joins = Vec::new();
        // Couple updaters, each owning a disjoint couple set (c ≡ t mod 2)
        // — the write-ordering argument needs a single writer per couple.
        for t in 0..2u64 {
            let tree = tree.clone();
            let delta = delta.clone();
            joins.push(s.spawn(move || {
                let mut h = tree.handle();
                let mut rng = SplitMix64::new(0xC0_0C + t);
                let mut local = 0i64;
                for _ in 0..1500u64 {
                    let couple = PREFIX / 2 + rng.next_below(PREFIX / 2) * 2 + t;
                    let (l, r) = (couple * 2, couple * 2 + 1);
                    if rng.next_below(2) == 0 {
                        if h.insert(r, couple).is_none() {
                            local += r as i64;
                        }
                        if h.insert(l, couple).is_none() {
                            local += l as i64;
                        }
                    } else {
                        if h.remove(l).is_some() {
                            local -= l as i64;
                        }
                        if h.remove(r).is_some() {
                            local -= r as i64;
                        }
                    }
                }
                delta.fetch_add(local, Ordering::Relaxed);
            }));
        }
        // Plain value-deterministic churn over the top region.
        {
            let tree = tree.clone();
            let delta = delta.clone();
            joins.push(s.spawn(move || {
                let mut h = tree.handle();
                let mut rng = SplitMix64::new(0xD1_CE);
                let mut local = 0i64;
                for _ in 0..3000u64 {
                    let k = 3 * PREFIX + rng.next_below(KEY_SPACE - 3 * PREFIX);
                    if rng.next_below(2) == 0 {
                        if h.insert(k, expected_value(k)).is_none() {
                            local += k as i64;
                        }
                    } else if h.remove(k).is_some() {
                        local -= k as i64;
                    }
                }
                delta.fetch_add(local, Ordering::Relaxed);
            }));
        }
        // Scanners: full-range and windowed scans racing the churn.
        for t in 0..2u64 {
            let tree = tree.clone();
            let stop = stop.clone();
            let oracle = &oracle;
            s.spawn(move || {
                let mut h = tree.handle();
                let mut rng = SplitMix64::new(0xFACE + t);
                let mut scans = 0u64;
                // Keep scanning for a minimum count even after the
                // updaters stop (in release mode they can finish before
                // a scanner is ever scheduled).
                while !stop.load(Ordering::Relaxed) || scans < 80 {
                    let tag = format!("{backend}/{strategy}");
                    if scans % 2 == 0 {
                        check_scan(&h.range_query(0, KEY_SPACE), 0, KEY_SPACE, oracle, &tag);
                    } else {
                        let lo = rng.next_below(KEY_SPACE - 64);
                        let hi = lo + 1 + rng.next_below(64);
                        check_scan(&h.range_query(lo, hi), lo, hi, oracle, &tag);
                    }
                    scans += 1;
                }
                assert_scanner_stats(h.stats(), backend);
            });
        }
        for j in joins {
            j.join().unwrap();
        }
    });
    tree.validate().unwrap();
    let prefix_sum: i64 = oracle.iter().map(|&k| k as i64).sum();
    assert_eq!(
        tree.key_sum() as i128,
        (prefix_sum + delta.load(Ordering::Relaxed)) as i128,
        "{backend}/{strategy}: keysum mismatch"
    );
}

#[test]
fn scanners_race_updaters_bst_all_strategies() {
    for strategy in Strategy::ALL {
        race(ShardBackend::Bst, strategy);
    }
}

#[test]
fn scanners_race_updaters_abtree_all_strategies() {
    for strategy in Strategy::ALL {
        race(ShardBackend::AbTree, strategy);
    }
}

/// Cross-shard scans ride per-shard optimistic sub-scans through the
/// sharded layer's ordered merge: the quiescent prefix (shard 0 under the
/// range router) must survive every cross-shard scan exactly while the
/// other shards churn, and the merged handle statistics show read-lane
/// traffic only, modulo counted escalations.
#[test]
fn sharded_scanners_race_updaters() {
    for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
        let map = Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards: 4,
                backend,
                key_space: KEY_SPACE,
                router: RouterKind::Range,
                htm: HtmConfig::default().with_spurious(0.35),
                ..ShardedConfig::default()
            })
            .unwrap(),
        );
        let oracle = {
            let mut h = map.handle();
            prefill_prefix(&mut |k, v| h.insert(k, v))
        };
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|s| {
            let _guard = StopOnDrop(stop.clone());
            let mut joins = Vec::new();
            for t in 0..2u64 {
                let map = map.clone();
                joins.push(s.spawn(move || {
                    let mut h = map.handle();
                    let mut rng = SplitMix64::new(0xAB + t);
                    for _ in 0..2500u64 {
                        let k = PREFIX + rng.next_below(KEY_SPACE - PREFIX);
                        if rng.next_below(2) == 0 {
                            h.insert(k, expected_value(k));
                        } else {
                            h.remove(k);
                        }
                    }
                }));
            }
            {
                let map = map.clone();
                let stop = stop.clone();
                let oracle = &oracle;
                s.spawn(move || {
                    let mut h = map.handle();
                    let mut scans = 0u64;
                    while !stop.load(Ordering::Relaxed) || scans < 60 {
                        let out = h.range_query(0, KEY_SPACE);
                        assert!(
                            out.windows(2).all(|w| w[0].0 < w[1].0),
                            "{backend}: cross-shard merge must be sorted"
                        );
                        let got: BTreeSet<u64> =
                            out.iter().map(|&(k, _)| k).filter(|&k| k < PREFIX).collect();
                        assert_eq!(&got, oracle, "{backend}: quiescent prefix diverged");
                        for &(k, v) in out.iter().filter(|&&(k, _)| k >= PREFIX) {
                            assert_eq!(v, expected_value(k), "{backend}: torn sharded scan");
                        }
                        scans += 1;
                    }
                    assert_scanner_stats(&h.stats(), backend);
                });
            }
            for j in joins {
                j.join().unwrap();
            }
        });
        map.validate().unwrap();
    }
}

/// Acceptance criterion (snapshot tier): a sustained-churn `ScanHeavy`
/// trial whose scans are long (`scan_len` ≥ 1000) completes every scan
/// transaction-free. Scans whose validation ladder the churn defeats are
/// rescued by the wait-free snapshot tier and counted as
/// `scan_snapshots`; none may degrade into a `run_op` transaction
/// (`scan_escalations == 0`), so the read lane carries exactly one
/// completion per scan.
#[test]
fn sustained_churn_scan_heavy_trial_is_transaction_free() {
    for structure in [Structure::Bst, Structure::AbTree] {
        let mut snapshots = 0u64;
        // The BST's validation sets are node-granular, so a long scan's
        // tiers each span scheduler slices and churn defeats the whole
        // ladder regularly; the rescue must fire. The ladder only
        // exhausts when churn lands inside *every* tier of one scan —
        // including the microsecond partial-rescan window — which needs
        // threads actually running in parallel. On a single-CPU host the
        // scheduler's coarse slices let the final tier re-validate
        // unopposed (observed: 40 seeds, ~60 first-tier defeats per
        // trial, zero ladder exhaustions), so there — as for the
        // (a,b)-tree, whose leaf-granular sets are ~16x smaller and
        // whose repair rounds run in microseconds on any host — the
        // rescue stays covered by the deterministic in-crate snapshot
        // tests and this trial contributes the acceptance property
        // itself (zero transactional escalations under churn).
        let parallel_host = std::thread::available_parallelism()
            .map(|n| n.get() >= 2)
            .unwrap_or(false);
        let require_rescue = parallel_host && matches!(structure, Structure::Bst);
        let seeds: u64 = if require_rescue { 6 } else { 1 };
        for seed in 1..=seeds {
            let spec = TrialSpec {
                structure,
                strategy: Strategy::ThreePath,
                threads: 4,
                duration: std::time::Duration::from_millis(250),
                key_range: 40_000,
                workload: Workload::ScanHeavy {
                    scan_pct: 10,
                    scan_len: 20_000,
                },
                read_probe: Some(threepath::core::ReadBoundConfig {
                    epoch_ops: 2,
                    ladder: vec![2],
                    ..threepath::core::ReadBoundConfig::default()
                }),
                seed,
                ..TrialSpec::default()
            };
            let r = run_trial(&spec);
            assert!(r.keysum_ok, "{structure}: keysum diverged");
            assert!(r.scan_ops > 0, "{structure}: trial ran no scans");
            assert_eq!(
                r.stats.scan_escalations(),
                0,
                "{structure}: a long scan escalated into a transaction"
            );
            assert_eq!(
                r.stats.completed(PathKind::Read),
                r.scan_ops,
                "{structure}: scans must complete on the read lane only"
            );
            snapshots += r.stats.scan_snapshots();
            if snapshots > 0 {
                break;
            }
        }
        assert!(
            !require_rescue || snapshots > 0,
            "{structure}: churn never drove a scan into the snapshot tier"
        );
    }
}

/// Steady state, no contention: scans execute zero HTM transactions on
/// both backends under both TLE and 3-path, even while spurious aborts
/// doom every transaction the tree might have tried — the acceptance
/// criterion of the scan-path PR, asserted through the scan stats lane.
#[test]
fn steady_state_scans_execute_zero_transactions() {
    for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
        for strategy in [Strategy::ThreePath, Strategy::Tle] {
            let tree = ShardTree::build(&ShardedConfig {
                backend,
                strategy,
                key_space: KEY_SPACE,
                htm: HtmConfig::default().with_spurious(0.95),
                ..ShardedConfig::default()
            });
            {
                let mut w = tree.handle();
                for k in (0..KEY_SPACE).step_by(2) {
                    w.insert(k, expected_value(k));
                }
            }
            let mut r = tree.handle();
            let mut rng = SplitMix64::new(7);
            for _ in 0..500 {
                let lo = rng.next_below(KEY_SPACE - 64);
                let out = r.range_query(lo, lo + 64);
                assert!(out.iter().all(|&(k, v)| k % 2 == 0 && v == expected_value(k)));
                assert_eq!(out.len(), 32, "{backend}/{strategy}: wrong window size");
            }
            let st = r.stats();
            assert_eq!(st.completed(PathKind::Read), 500, "{backend}/{strategy}");
            for p in [PathKind::Fast, PathKind::Middle, PathKind::Fallback] {
                assert_eq!(st.completed(p), 0, "{backend}/{strategy}: {p} used");
                assert_eq!(st.commits(p), 0);
                assert_eq!(st.aborts(p).total(), 0);
            }
            assert_eq!(st.scan_retries(), 0, "quiescent scans never retry");
            assert_eq!(st.scan_escalations(), 0);
            assert!(st.scan_leaves_validated() >= 500);
        }
    }
}
