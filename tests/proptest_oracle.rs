//! Property-based oracle tests: arbitrary operation sequences against
//! `BTreeMap`, across structures and strategies.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use threepath::abtree::{AbTree, AbTreeConfig};
use threepath::bst::{Bst, BstConfig};
use threepath::core::{merge_subranges, Strategy as ExecStrategy};
use threepath::htm::HtmConfig;
use threepath::kcas::KcasList;
use threepath::sharded::{RouterKind, ShardBackend, ShardedConfig, ShardedMap};

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Range(u64, u64),
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_range, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_range).prop_map(Op::Remove),
        (0..key_range).prop_map(Op::Get),
        (0..key_range, 0..64u64).prop_map(|(lo, len)| Op::Range(lo, lo + len)),
    ]
}

fn exec_strategy() -> impl Strategy<Value = ExecStrategy> {
    prop_oneof![
        Just(ExecStrategy::NonHtm),
        Just(ExecStrategy::Tle),
        Just(ExecStrategy::TwoPathCon),
        Just(ExecStrategy::TwoPathNonCon),
        Just(ExecStrategy::ThreePath),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn bst_matches_btreemap(ops in proptest::collection::vec(op_strategy(64), 1..400),
                            strat in exec_strategy(),
                            spurious in prop_oneof![Just(0.0), Just(0.5)]) {
        let tree = Arc::new(Bst::with_config(BstConfig {
            strategy: strat,
            htm: HtmConfig::default().with_spurious(spurious),
            ..BstConfig::default()
        }));
        let mut h = tree.handle();
        let mut oracle = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(h.insert(k, v), oracle.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(h.remove(k), oracle.remove(&k)),
                Op::Get(k) => prop_assert_eq!(h.get(k), oracle.get(&k).copied()),
                Op::Range(lo, hi) => {
                    let want: Vec<(u64, u64)> =
                        oracle.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(h.range_query(lo, hi), want);
                }
            }
        }
        drop(h);
        let shape = tree.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(shape.keys, oracle.len());
    }

    #[test]
    fn abtree_matches_btreemap(ops in proptest::collection::vec(op_strategy(128), 1..400),
                               strat in exec_strategy()) {
        let tree = Arc::new(AbTree::with_config(AbTreeConfig {
            strategy: strat,
            ..AbTreeConfig::default()
        }));
        let mut h = tree.handle();
        let mut oracle = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(h.insert(k, v), oracle.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(h.remove(k), oracle.remove(&k)),
                Op::Get(k) => prop_assert_eq!(h.get(k), oracle.get(&k).copied()),
                Op::Range(lo, hi) => {
                    let want: Vec<(u64, u64)> =
                        oracle.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(h.range_query(lo, hi), want);
                }
            }
        }
        drop(h);
        let shape = tree.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(shape.keys, oracle.len());
        prop_assert_eq!(shape.tagged, 0);
        prop_assert_eq!(shape.underfull, 0);
    }

    /// The same `Op` sequences as above, against the sharded map under
    /// **both routing policies**. The key range (96) always spans several
    /// shards, and `Range` ops cross shard boundaries: under the range
    /// router they exercise the ordered per-shard merge, and under the
    /// hash router the sort-merge over every shard's scattered members —
    /// both against the `BTreeMap` oracle's `range`.
    #[test]
    fn sharded_matches_btreemap(ops in proptest::collection::vec(op_strategy(96), 1..400),
                                shards in prop_oneof![Just(2usize), Just(8usize)],
                                strat in exec_strategy(),
                                router in prop_oneof![Just(RouterKind::Range), Just(RouterKind::Hash)],
                                abtree in any::<bool>()) {
        let map = Arc::new(ShardedMap::with_config(ShardedConfig {
            shards,
            backend: if abtree { ShardBackend::AbTree } else { ShardBackend::Bst },
            key_space: 96,
            router,
            strategy: strat,
            ..ShardedConfig::default()
        }).expect("valid config"));
        let mut h = map.handle();
        let mut oracle = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(h.insert(k, v), oracle.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(h.remove(k), oracle.remove(&k)),
                Op::Get(k) => prop_assert_eq!(h.get(k), oracle.get(&k).copied()),
                Op::Range(lo, hi) => {
                    let want: Vec<(u64, u64)> =
                        oracle.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(h.range_query(lo, hi), want);
                }
            }
        }
        drop(h);
        map.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(map.len(), oracle.len());
        let want_sum: u128 = oracle.keys().map(|&k| k as u128).sum();
        prop_assert_eq!(map.key_sum(), want_sum);
        let want: Vec<(u64, u64)> = oracle.into_iter().collect();
        prop_assert_eq!(map.collect(), want);
    }

    /// The hole-repair interval algebra behind partial rescans: merging
    /// arbitrary subranges — adjacent, overlapping, swallowed, inverted,
    /// empty — must preserve exactly the covered points (brute-force
    /// membership oracle over the small universe), emit a minimal sorted
    /// disjoint list, and be a fixpoint (re-merging the output is a
    /// no-op, so repeated repair rounds cannot oscillate).
    #[test]
    fn merge_subranges_matches_coverage_oracle(
        ranges in proptest::collection::vec((0..48u64, 0..48u64), 0..24),
    ) {
        let merged = merge_subranges(ranges.clone());
        let covered = |set: &[(u64, u64)], x: u64| set.iter().any(|&(lo, hi)| lo <= x && x < hi);
        for x in 0..48u64 {
            prop_assert_eq!(
                covered(&merged, x),
                covered(&ranges, x),
                "coverage differs at {}", x
            );
        }
        for &(lo, hi) in &merged {
            prop_assert!(lo < hi, "empty subrange survived: [{}, {})", lo, hi);
        }
        for w in merged.windows(2) {
            prop_assert!(
                w[0].1 < w[1].0,
                "adjacent or overlapping output: {:?} then {:?}", w[0], w[1]
            );
        }
        prop_assert_eq!(merge_subranges(merged.clone()), merged, "not a fixpoint");
    }

    #[test]
    fn kcas_list_matches_btreemap(ops in proptest::collection::vec(op_strategy(48), 1..250)) {
        let list = Arc::new(KcasList::new());
        let mut h = list.handle();
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let k = k + 1; // list keys start at 1 (head sentinel)
                    let inserted = h.insert(k, v);
                    prop_assert_eq!(inserted, !oracle.contains_key(&k));
                    oracle.entry(k).or_insert(v);
                }
                Op::Remove(k) => prop_assert_eq!(h.remove(k + 1), oracle.remove(&(k + 1))),
                Op::Get(k) => prop_assert_eq!(h.get(k + 1), oracle.get(&(k + 1)).copied()),
                Op::Range(..) => {} // lists do not expose range queries
            }
        }
        drop(h);
        let want: Vec<(u64, u64)> = oracle.into_iter().collect();
        prop_assert_eq!(list.collect(), want);
    }
}
