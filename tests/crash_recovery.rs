//! Kill-and-restart crash harness for the persistent sharded map.
//!
//! The driver test re-invokes this test binary as a *worker* process
//! (filtered to `crash_worker_entry` via the libtest CLI), lets it hammer
//! a persistent map with a deterministic per-thread workload, SIGKILLs it
//! at a random point — prefill, steady state, or mid-snapshot, depending
//! on where the delay lands — recovers the directory in-process, and
//! checks the recovered state against an oracle of *acknowledged*
//! operations. Then it restarts the worker on the same directory and
//! repeats, so later rounds recover, resume, and crash again.
//!
//! The oracle works because each worker thread owns a disjoint key class
//! (`key % THREADS == t`) and a deterministic operation stream: thread
//! `t` records an acknowledgement count `c_t` (a plain 8-byte overwrite,
//! durable across SIGKILL because the page cache survives process death)
//! after every map call returns. An op is only acknowledged after its WAL
//! record is written (write-ahead under the shard log lock), so the
//! recovered class-`t` state must equal the stream prefix of length
//! `c_t` or `c_t + 1` — the single in-flight op may be logged (even
//! applied) but unacknowledged, exactly the contract a crash permits.
//! Anything else — a lost acknowledged op, a half-applied batch, an
//! invented key — fails the round.
//!
//! Schedule-sensitive and process-spawning, so gated like the other
//! concurrent suites; Unix-only (SIGKILL via `Child::kill`). The seed
//! matrix is driven by `THREEPATH_CRASH_SEED` / `THREEPATH_CRASH_ROUNDS`
//! so CI can sweep seeds without recompiling.
#![cfg(all(unix, feature = "stress-tests"))]

use std::collections::BTreeMap;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use threepath::htm::SplitMix64;
use threepath::sharded::{FsyncPolicy, PersistConfig, ShardedConfig, ShardedMap};

const THREADS: u64 = 3;
const SHARDS: usize = 4;
const KEY_SPACE: u64 = 4096;
/// Per-thread stream length: long enough that the kill always lands
/// mid-run on the first rounds (a worker that drains its stream simply
/// exits and the kill is a no-op).
const OPS_PER_THREAD: u64 = 1_000_000;

fn crash_cfg(dir: &Path) -> ShardedConfig {
    ShardedConfig {
        shards: SHARDS,
        key_space: KEY_SPACE,
        persist: Some(PersistConfig {
            fsync: FsyncPolicy::EveryN(8),
            // Aggressive cadence: snapshots rotate every shard's log many
            // times per kill window, so kills land before, during, and
            // after rotations across the rounds.
            snapshot_every: Some(64),
            ..PersistConfig::new(dir)
        }),
        ..ShardedConfig::default()
    }
}

/// Operation `i` of thread `t`'s stream: random-access deterministic (no
/// sequential RNG state), so the worker can resume at any index and the
/// driver can replay any prefix. Keys stay inside the thread's class
/// (`key % THREADS == t`); `Some(v)` inserts, `None` removes.
fn op_at(seed: u64, t: u64, i: u64) -> (u64, Option<u64>) {
    let mut rng = SplitMix64::new(
        seed ^ t.wrapping_mul(0xA24B_AED4_963E_E407) ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let r = rng.next_u64();
    let key = t + THREADS * (r % (KEY_SPACE / THREADS));
    if r & 2 == 0 {
        (key, Some(i ^ r))
    } else {
        (key, None)
    }
}

/// The class-`t` key/value state after acknowledging `len` stream ops.
fn class_state(seed: u64, t: u64, len: u64) -> Vec<(u64, u64)> {
    let mut m = BTreeMap::new();
    for i in 0..len {
        match op_at(seed, t, i) {
            (k, Some(v)) => {
                m.insert(k, v);
            }
            (k, None) => {
                m.remove(&k);
            }
        }
    }
    m.into_iter().collect()
}

fn ack_path(dir: &Path, t: u64) -> PathBuf {
    dir.join(format!("ack-{t}"))
}

fn read_ack(dir: &Path, t: u64) -> u64 {
    let mut buf = [0u8; 8];
    match std::fs::File::open(ack_path(dir, t)) {
        Ok(f) => match f.read_at(&mut buf, 0) {
            Ok(8) => u64::from_le_bytes(buf),
            _ => 0, // absent or torn ack counter: no ops acknowledged
        },
        Err(_) => 0,
    }
}

/// Worker process body: build or recover the persistent map, then resume
/// every thread's stream from its acknowledged count and run until the
/// stream drains or the driver kills us.
fn run_worker(dir: &Path, seed: u64) {
    let cfg = crash_cfg(dir);
    let map = if cfg.persist.as_ref().expect("crash cfg persists").initialized() {
        ShardedMap::recover(dir, cfg).expect("worker recovery failed").0
    } else {
        Arc::new(ShardedMap::with_config(cfg).expect("valid crash cfg"))
    };
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let map = Arc::clone(&map);
            let dir = dir.to_path_buf();
            s.spawn(move || {
                let ack = std::fs::OpenOptions::new()
                    .create(true)
                    .write(true)
                    .truncate(false) // a restart resumes from the old count
                    .open(ack_path(&dir, t))
                    .expect("open ack file");
                let mut h = map.handle();
                // Resuming at the acked count may re-apply one already
                // logged op; ops are idempotent by construction (the
                // value is a function of the index), so the state stays
                // a stream prefix.
                for i in read_ack(&dir, t)..OPS_PER_THREAD {
                    match op_at(seed, t, i) {
                        (k, Some(v)) => {
                            h.insert(k, v);
                        }
                        (k, None) => {
                            h.remove(k);
                        }
                    }
                    ack.write_at(&(i + 1).to_le_bytes(), 0)
                        .expect("write ack counter");
                }
            });
        }
    });
}

/// Worker entry point: inert in normal test runs (the driver arms it via
/// the environment when re-invoking this binary).
#[test]
fn crash_worker_entry() {
    let Ok(dir) = std::env::var("THREEPATH_CRASH_DIR") else {
        return;
    };
    let seed = std::env::var("THREEPATH_CRASH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FF_EE00);
    run_worker(Path::new(&dir), seed);
}

/// The driver: spawn, kill, recover, check, restart — several rounds on
/// one directory.
#[test]
fn kill_and_restart_recovers_acknowledged_state() {
    let seed: u64 = std::env::var("THREEPATH_CRASH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xC0FF_EE00);
    let rounds: u64 = std::env::var("THREEPATH_CRASH_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let dir = std::env::temp_dir().join(format!(
        "threepath-crash-{}-{seed:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create crash dir");
    let exe = std::env::current_exe().expect("own test binary path");
    let mut delay_rng = SplitMix64::new(seed ^ 0xD15A_57E2);
    let mut prev_total = 0u64;
    for round in 0..rounds {
        let mut child = std::process::Command::new(&exe)
            .args(["crash_worker_entry", "--exact", "--test-threads=1", "--nocapture"])
            .env("THREEPATH_CRASH_DIR", &dir)
            .env("THREEPATH_CRASH_SEED", seed.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .expect("spawn crash worker");
        // Kill delays sweep the interesting phases: short lands in
        // startup/recovery/prefill, long in steady state with many
        // snapshot rotations behind it.
        let delay = 30 + delay_rng.next_below(150);
        std::thread::sleep(Duration::from_millis(delay));
        child.kill().expect("SIGKILL the worker");
        child.wait().expect("reap the worker");

        let cfg = crash_cfg(&dir);
        if !cfg.persist.as_ref().expect("crash cfg persists").initialized() {
            // The kill landed before the worker wrote the manifest (the
            // atomic last step of layer creation): nothing durable
            // exists yet, so nothing may have been acknowledged either.
            for t in 0..THREADS {
                assert_eq!(read_ack(&dir, t), 0, "acked ops with no durable state");
            }
            continue;
        }
        let (map, reports) = ShardedMap::recover(&dir, cfg).expect("driver recovery failed");
        map.validate().expect("recovered map validates");
        let pairs = map.collect();
        let mut total = 0u64;
        for t in 0..THREADS {
            let c = read_ack(&dir, t);
            total += c;
            let got: Vec<(u64, u64)> = pairs
                .iter()
                .copied()
                .filter(|(k, _)| k % THREADS == t)
                .collect();
            let acked = class_state(seed, t, c);
            if got != acked {
                let with_inflight = class_state(seed, t, c + 1);
                assert_eq!(
                    got, with_inflight,
                    "round {round} class {t}: recovered state is neither the \
                     acked prefix ({c} ops) nor acked+1 (torn bytes this round: {})",
                    reports.iter().map(|r| r.bytes_truncated).sum::<u64>()
                );
            }
        }
        assert!(
            total >= prev_total,
            "round {round}: acknowledged counts moved backwards"
        );
        prev_total = total;
        drop(map); // release the shard logs before the next worker opens them
    }
    assert!(
        prev_total > 0,
        "no worker ever acknowledged an op — the harness never exercised a crash"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
