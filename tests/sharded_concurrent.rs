//! Concurrent correctness of the sharded map layer: multi-threaded key-sum
//! verification across every strategy, and consistency of cross-shard
//! range queries while updates are in flight.
//!
//! As with `tests/concurrent.rs`, every assertion is an
//! interleaving-independent invariant, but execution is multi-threaded, so
//! the file is gated behind the default-on `stress-tests` feature.
#![cfg(feature = "stress-tests")]

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

use threepath::core::Strategy;
use threepath::htm::{HtmConfig, SplitMix64};
use threepath::sharded::{
    AdaptiveConfig, RouterKind, ShardBackend, ShardedConfig, ShardedMap,
};
use threepath::workload::{run_trial, KeyDist, Structure, TrialSpec, Workload};

mod common;
use common::StopOnDrop;

/// Key-sum verification under every strategy: 4 threads hammer a 4-shard
/// map (including keys beyond `key_space`, which route to the last shard),
/// with spurious-abort injection forcing path churn inside each shard.
#[test]
fn sharded_keysum_all_strategies() {
    for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
        for strategy in Strategy::ALL {
            let map = Arc::new(ShardedMap::with_config(ShardedConfig {
                shards: 4,
                backend,
                key_space: 256,
                strategy,
                htm: HtmConfig::default().with_spurious(0.3).with_seed(11),
                ..ShardedConfig::default()
            }).expect("valid config"));
            let delta = Arc::new(AtomicI64::new(0));
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let map = map.clone();
                    let delta = delta.clone();
                    s.spawn(move || {
                        let mut h = map.handle();
                        let mut rng = SplitMix64::new(t * 131 + 5);
                        let mut local = 0i64;
                        for i in 0..1500u64 {
                            // Drawn over [0, 320): ~20% of keys overflow
                            // key_space and land in the last shard.
                            let k = rng.next_below(320);
                            if rng.next_below(2) == 0 {
                                if h.insert(k, i).is_none() {
                                    local += k as i64;
                                }
                            } else if h.remove(k).is_some() {
                                local -= k as i64;
                            }
                        }
                        delta.fetch_add(local, Ordering::Relaxed);
                    });
                }
            });
            map.validate().unwrap();
            assert_eq!(
                map.key_sum() as i128,
                delta.load(Ordering::Relaxed) as i128,
                "{backend}/{strategy}"
            );
            assert_eq!(map.collect().len(), map.len(), "{backend}/{strategy}");
        }
    }
}

/// Cross-shard range queries while updates are in flight.
///
/// The map has 4 shards over key space 400 (width 100). Shard 0's range is
/// populated once before the stress and never updated again — a *quiescent
/// prefix* with a known oracle. Updaters churn shards 1–3 only. Every
/// cross-shard query spanning all shards must therefore observe the
/// quiescent prefix exactly (same keys, same sum), and — because each
/// per-shard query is individually atomic — must never observe a torn
/// couple among the paired keys updaters write to shard 1.
#[test]
fn cross_shard_rq_snapshots_are_consistent() {
    let map = Arc::new(ShardedMap::with_config(ShardedConfig {
        shards: 4,
        backend: ShardBackend::Bst,
        key_space: 400,
        strategy: Strategy::ThreePath,
        ..ShardedConfig::default()
    }).expect("valid config"));

    // Quiescent prefix: every third key in shard 0's range [0, 100).
    let mut oracle = BTreeSet::new();
    let mut oracle_sum = 0u128;
    {
        let mut h = map.handle();
        for k in (0..100u64).step_by(3) {
            assert_eq!(h.insert(k, k * 7), None);
            oracle.insert(k);
            oracle_sum += k as u128;
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Couple updaters in shard 1's range [100, 200): insert right
        // endpoint before left, remove left before right, so any atomic
        // per-shard snapshot satisfies "left present => right present".
        // Each thread owns a disjoint set of couples (c % 2 == t) — the
        // ordering argument only holds with a single writer per couple.
        for t in 0..2u64 {
            let map = map.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SplitMix64::new(t + 21);
                while !stop.load(Ordering::Relaxed) {
                    // (2c, 2c+1) ∈ [100, 200), c ≡ t (mod 2).
                    let couple = 50 + rng.next_below(25) * 2 + t;
                    let (l, r) = (couple * 2, couple * 2 + 1);
                    if rng.next_below(2) == 0 {
                        h.insert(r, couple);
                        h.insert(l, couple);
                    } else {
                        h.remove(l);
                        h.remove(r);
                    }
                }
            });
        }
        // Plain churn over shards 2–3, for extra cross-shard traffic.
        {
            let map = map.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SplitMix64::new(77);
                while !stop.load(Ordering::Relaxed) {
                    let k = 200 + rng.next_below(200);
                    if rng.next_below(2) == 0 {
                        h.insert(k, k);
                    } else {
                        h.remove(k);
                    }
                }
            });
        }
        // The checker: cross-shard queries spanning all four shards.
        {
            let map = map.clone();
            let stop = stop.clone();
            let oracle = &oracle;
            s.spawn(move || {
                let _stop_guard = StopOnDrop(stop.clone());
                let mut h = map.handle();
                for _ in 0..300 {
                    let out = h.range_query(0, 400);
                    assert!(
                        out.windows(2).all(|w| w[0].0 < w[1].0),
                        "cross-shard merge must be sorted and duplicate-free"
                    );
                    // Quiescent prefix: exact match against the oracle.
                    let prefix: BTreeSet<u64> =
                        out.iter().map(|&(k, _)| k).filter(|&k| k < 100).collect();
                    assert_eq!(&prefix, oracle, "quiescent prefix keys diverged");
                    let sum: u128 = prefix.iter().map(|&k| k as u128).sum();
                    assert_eq!(sum, oracle_sum, "quiescent prefix sum diverged");
                    // Per-shard atomicity: no torn couple in shard 1.
                    let keys: BTreeSet<u64> = out
                        .iter()
                        .map(|&(k, _)| k)
                        .filter(|&k| (100..200).contains(&k))
                        .collect();
                    for &k in &keys {
                        if k % 2 == 0 {
                            assert!(
                                keys.contains(&(k + 1)),
                                "torn couple in shard 1: {k} without {}",
                                k + 1
                            );
                        }
                    }
                }
            });
        }
    });

    map.validate().unwrap();
    // The quiescent prefix is still intact after the stress.
    let final_prefix: u128 = map
        .collect()
        .iter()
        .filter(|&&(k, _)| k < 100)
        .map(|&(k, _)| k as u128)
        .sum();
    assert_eq!(final_prefix, oracle_sum);
}

/// End-to-end: the workload runner's heavy path (dedicated RQ thread) over
/// a sharded structure with a skewed key distribution — every range query
/// is a cross-shard merge, and the keysum must still verify.
#[test]
fn heavy_skewed_trial_on_sharded_map() {
    let r = run_trial(&TrialSpec {
        structure: Structure::ShardedAbTree { shards: 4 },
        strategy: Strategy::ThreePath,
        threads: 3,
        duration: std::time::Duration::from_millis(60),
        key_range: 1024,
        key_dist: KeyDist::ZipfScattered { theta: 0.99 },
        workload: Workload::Heavy { rq_extent: 512 },
        ..TrialSpec::default()
    });
    assert!(r.keysum_ok, "sharded heavy keysum failed");
    assert!(r.rq_ops > 0, "the dedicated RQ thread must record queries");
    assert!(r.update_ops > 0);
}

/// Per-shard adaptive probing under concurrency: shard 1's HTM runtime
/// aborts ~97% of transactions spuriously while the other shards are
/// clean, and 4 threads hammer all shards at once. Each shard's
/// controller probes TLE against 3-path while operations are in flight;
/// the keysum invariant must hold across every strategy swap (operations
/// in flight during a flip run under whichever strategy they read), the
/// decision state must stay coherent with the trees, and the per-shard
/// observed (ops, aborts) picture must localize the storm. Which
/// strategy each shard settles on is the machine's business — the
/// decision *process* and the correctness envelope are what this test
/// pins down.
#[test]
fn adaptive_probing_keeps_invariants_across_live_swaps() {
    let map = Arc::new(
        ShardedMap::with_config(ShardedConfig {
            shards: 4,
            backend: ShardBackend::Bst,
            key_space: 1024,
            strategy: Strategy::ThreePath,
            adaptive: Some(AdaptiveConfig {
                sample_every: 16,
                epoch_ops: 256,
                ..AdaptiveConfig::default()
            }),
            htm_overrides: vec![(1, HtmConfig::default().with_spurious(0.97).with_seed(5))],
            ..ShardedConfig::default()
        })
        .expect("valid config"),
    );
    assert_eq!(map.shard_strategies(), vec![Strategy::ThreePath; 4]);

    let delta = Arc::new(AtomicI64::new(0));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let map = map.clone();
            let delta = delta.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SplitMix64::new(t * 977 + 13);
                let mut local = 0i64;
                for i in 0..6000u64 {
                    let k = rng.next_below(1024);
                    if rng.next_below(2) == 0 {
                        if h.insert(k, i).is_none() {
                            local += k as i64;
                        }
                    } else if h.remove(k).is_some() {
                        local -= k as i64;
                    }
                }
                delta.fetch_add(local, Ordering::Relaxed);
            });
        }
    });

    let ctl = map.adaptive().expect("adaptive map has a controller");
    for shard in 0..4 {
        assert!(
            ctl.epochs(shard) > 0,
            "shard {shard} must have claimed decision windows"
        );
        // The probe pass measured the alternative at least once.
        assert!(
            ctl.controller_of(shard).switches() > 0,
            "shard {shard} never probed the other strategy"
        );
        // The decision state and the tree never desynchronize, and both
        // live strategies stay inside the adaptive set.
        assert_eq!(ctl.strategy_of(shard), map.shard_strategies()[shard]);
        assert!(threepath::core::ADAPTIVE_STRATEGIES
            .contains(&ctl.settled_strategy_of(shard)));
    }
    // The per-shard stats picture localizes the storm: aborts concentrate
    // on shard 1 while completions spread across all shards.
    let (hot_ops, hot_aborts) = ctl.observed(1);
    assert!(hot_ops > 0 && hot_aborts as f64 / hot_ops as f64 >= 2.0);
    for cold in [0, 2, 3] {
        let (ops, aborts) = ctl.observed(cold);
        assert!(ops > 0, "shard {cold} saw traffic");
        assert!(
            (aborts as f64 / ops as f64) < 2.0,
            "clean shard {cold} abort rate must stay low ({aborts}/{ops})"
        );
    }
    // Correctness across the strategy swaps.
    map.validate().unwrap();
    assert_eq!(map.key_sum() as i128, delta.load(Ordering::Relaxed) as i128);
}

/// HTM admission control racing real traffic: with a one-thread admission
/// window and a spurious-abort storm keeping the fallback path busy,
/// overflow threads take the direct fallback lane while admitted threads
/// keep attempting transactions — and every correctness oracle (keysum,
/// structural validation, collect/len agreement) must be identical to the
/// uncontrolled map's. Run both settings through the same workload, both
/// backends.
#[test]
fn admission_gated_fallback_preserves_the_oracles() {
    for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
        for admission in [None, Some(1)] {
            let map = Arc::new(
                ShardedMap::with_config(ShardedConfig {
                    shards: 2,
                    backend,
                    key_space: 512,
                    strategy: Strategy::ThreePath,
                    // Heavy spurious injection keeps operations falling
                    // back, so the gate's window actually closes.
                    htm: HtmConfig::default().with_spurious(0.6).with_seed(41),
                    admission,
                    ..ShardedConfig::default()
                })
                .expect("valid config"),
            );
            let delta = Arc::new(AtomicI64::new(0));
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let map = map.clone();
                    let delta = delta.clone();
                    s.spawn(move || {
                        let mut h = map.handle();
                        let mut rng = SplitMix64::new(t * 433 + 9);
                        let mut local = 0i64;
                        for i in 0..2000u64 {
                            let k = rng.next_below(512);
                            if rng.next_below(2) == 0 {
                                if h.insert(k, i).is_none() {
                                    local += k as i64;
                                }
                            } else if h.remove(k).is_some() {
                                local -= k as i64;
                            }
                        }
                        delta.fetch_add(local, Ordering::Relaxed);
                    });
                }
            });
            map.validate().unwrap();
            assert_eq!(
                map.key_sum() as i128,
                delta.load(Ordering::Relaxed) as i128,
                "{backend:?}/admission={admission:?}"
            );
            assert_eq!(map.collect().len(), map.len());
        }
    }
}

/// Hash-routed concurrency: the keysum invariant and sorted, duplicate-free
/// cross-shard sort-merged range queries hold while updates are in flight.
#[test]
fn hash_routed_concurrent_keysum_and_rqs() {
    let map = Arc::new(
        ShardedMap::with_config(ShardedConfig {
            shards: 4,
            backend: ShardBackend::AbTree,
            key_space: 512,
            router: RouterKind::Hash,
            strategy: Strategy::ThreePath,
            htm: HtmConfig::default().with_spurious(0.2).with_seed(23),
            ..ShardedConfig::default()
        })
        .expect("valid config"),
    );
    let delta = Arc::new(AtomicI64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let map = map.clone();
            let delta = delta.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut rng = SplitMix64::new(t * 389 + 7);
                let mut local = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.next_below(512);
                    if rng.next_below(2) == 0 {
                        if h.insert(k, k).is_none() {
                            local += k as i64;
                        }
                    } else if h.remove(k).is_some() {
                        local -= k as i64;
                    }
                }
                delta.fetch_add(local, Ordering::Relaxed);
            });
        }
        {
            let map = map.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let _stop_guard = StopOnDrop(stop.clone());
                let mut h = map.handle();
                for _ in 0..200 {
                    let out = h.range_query(100, 400);
                    assert!(
                        out.windows(2).all(|w| w[0].0 < w[1].0),
                        "sort-merge must produce a strictly ascending sequence"
                    );
                    assert!(out.iter().all(|&(k, _)| (100..400).contains(&k)));
                }
            });
        }
    });
    map.validate().unwrap();
    assert_eq!(map.key_sum() as i128, delta.load(Ordering::Relaxed) as i128);
    assert_eq!(map.collect().len(), map.len());
}
