//! Facade-level durability tests: persistent `ShardedMap`s round-tripped
//! through crash-shaped endings (drop without shutdown, injected torn
//! appends) and the graceful path (server `shutdown()`), each followed by
//! `ShardedMap::recover` and compared against an in-process oracle.
//!
//! The per-record framing, fail points, and torn-tail truncation rules
//! are unit-tested inside `threepath-persist`; this file checks the
//! *integration*: the sharded map logs write-ahead through every entry
//! point (point ops, batches, the server's coalesced plans), the
//! manifest pins the layout, and recovery rebuilds exactly the
//! acknowledged state.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use threepath::core::BatchOp;
use threepath::server::{KvServer, ServerConfig, SubmitError};
use threepath::sharded::{
    FailPoints, FsyncPolicy, PersistConfig, ShardedConfig, ShardedMap,
};

/// A fresh, unique persistence directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "threepath-facade-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persistent_cfg(dir: &PathBuf, batched: bool) -> ShardedConfig {
    ShardedConfig {
        shards: 4,
        key_space: 1024,
        batched,
        persist: Some(PersistConfig {
            fsync: FsyncPolicy::EveryN(8),
            snapshot_every: Some(16),
            ..PersistConfig::new(dir)
        }),
        ..ShardedConfig::default()
    }
}

/// Point ops and explicit same-shard batches through the facade, ended by
/// an unceremonious drop (the crash shape: no shutdown, no final sync),
/// recovered, and compared key-for-key against a `BTreeMap` oracle.
#[test]
fn facade_round_trip_survives_a_dropped_map() {
    let dir = fresh_dir("roundtrip");
    let cfg = persistent_cfg(&dir, true);
    let map = Arc::new(ShardedMap::with_config(cfg.clone()).expect("valid config"));
    let mut h = map.handle();
    let mut oracle = BTreeMap::new();
    for k in 0..200u64 {
        assert_eq!(h.insert(k, k * 3), oracle.insert(k, k * 3));
    }
    for k in (0..200u64).step_by(3) {
        assert_eq!(h.remove(k), oracle.remove(&k));
    }
    // A same-shard batch rides the batch entry point (one WAL record for
    // the whole plan).
    let shard = map.shard_of(7);
    let ops: Vec<BatchOp> = (0..8)
        .map(|i| map.key_space() / 4 * shard as u64 + i)
        .map(|k| BatchOp::Insert(k, k + 1_000))
        .collect();
    for op in &ops {
        if let BatchOp::Insert(k, v) = *op {
            oracle.insert(k, v);
        }
    }
    h.shard_batch(shard, &ops);
    drop(h);
    drop(map); // no shutdown, no sync: the crash shape

    let (recovered, reports) = ShardedMap::recover(&dir, cfg).expect("recovery failed");
    assert_eq!(reports.len(), 4);
    assert!(reports.iter().all(|r| r.bytes_truncated == 0));
    let mut rh = recovered.handle();
    let pairs = rh.range_query(0, u64::MAX);
    let expect: Vec<(u64, u64)> = oracle.into_iter().collect();
    assert_eq!(pairs, expect);
    recovered.validate().expect("recovered map validates");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The graceful path: a server over a persistent map is shut down, which
/// drains the queues and fsyncs every shard log; recovery then returns
/// exactly the pre-shutdown state, and the stopped server refuses new
/// submissions with the typed error rather than a panic.
#[test]
fn server_shutdown_then_recover_preserves_every_reply() {
    let dir = fresh_dir("shutdown");
    let cfg = persistent_cfg(&dir, true);
    let map = Arc::new(ShardedMap::with_config(cfg.clone()).expect("valid config"));
    let srv = Arc::new(KvServer::new(map, ServerConfig::default()).expect("batched map"));
    let mut c = srv.client();
    let mut oracle = BTreeMap::new();
    for k in 0..300u64 {
        let v = k.wrapping_mul(0x9E37_79B9);
        assert_eq!(c.insert(k, v), oracle.insert(k, v));
    }
    // Shard-straddling submissions go through the queues and coalesce.
    let replies = c.submit((0..32).map(|k| BatchOp::Remove(k * 8)).collect());
    for (i, r) in replies.iter().enumerate() {
        assert_eq!(*r, oracle.remove(&(i as u64 * 8)));
    }
    let before: Vec<(u64, u64)> = oracle.into_iter().collect();

    srv.shutdown().expect("shutdown flushes and syncs");
    assert!(srv.is_shutting_down());
    assert_eq!(
        c.try_submit(vec![BatchOp::Insert(1, 1)]),
        Err(SubmitError::ShuttingDown)
    );
    // Idempotent: a second shutdown finds empty queues and re-syncs.
    srv.shutdown().expect("shutdown is idempotent");
    drop(c);
    drop(srv);

    let (recovered, _) = ShardedMap::recover(&dir, cfg).expect("recovery failed");
    let mut rh = recovered.handle();
    assert_eq!(rh.range_query(0, u64::MAX), before);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected mid-record tear at the facade level: the armed append
/// panics (fail-stop — the log is the map), and recovery truncates the
/// torn frame, restoring exactly the acknowledged prefix.
#[test]
fn injected_torn_append_recovers_the_acknowledged_prefix() {
    let dir = fresh_dir("torn");
    let mut cfg = persistent_cfg(&dir, false);
    {
        let p = cfg.persist.as_mut().expect("persistent test config");
        p.snapshot_every = None; // keep every record in the log tail
        p.failpoints = FailPoints {
            // Each shard's 6th append dies after 5 bytes of frame.
            torn_append: Some((5, 5)),
            ..FailPoints::default()
        };
    }
    let map = Arc::new(ShardedMap::with_config(cfg.clone()).expect("valid config"));
    let shard0_keys: Vec<u64> = (0..cfg.key_space)
        .filter(|&k| map.shard_of(k) == 0)
        .take(6)
        .collect();
    let mut acked = Vec::new();
    for (i, &k) in shard0_keys.iter().enumerate() {
        let map = Arc::clone(&map);
        let k2 = k;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            map.handle().insert(k2, k2 + 1);
        }));
        if i < 5 {
            r.expect("appends before the fail point succeed");
            acked.push((k, k + 1));
        } else {
            r.expect_err("the armed append is fail-stop");
        }
    }
    drop(map);

    // Recovery must silently cut the torn frame and keep the prefix.
    let mut clean = cfg.clone();
    clean.persist.as_mut().expect("persistent test config").failpoints =
        FailPoints::default();
    let (recovered, reports) = ShardedMap::recover(&dir, clean).expect("torn tail is not fatal");
    assert!(
        reports[0].bytes_truncated > 0,
        "the tear left partial bytes to cut"
    );
    let mut rh = recovered.handle();
    assert_eq!(rh.range_query(0, u64::MAX), acked);
    let _ = std::fs::remove_dir_all(&dir);
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
}

fn op_strategy(key_range: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_range, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_range).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Arbitrary op sequences against a persistent sharded map with a
    /// mid-sequence crash-and-recover: the map is dropped (no sync) at an
    /// arbitrary cut point, recovered, and driven to the end; final state
    /// must equal the `BTreeMap` oracle exactly.
    #[test]
    fn persistent_sharded_map_matches_btreemap_across_a_restart(
        ops in proptest::collection::vec(op_strategy(256), 1..200),
        cut in 0usize..200,
        snapshot_every in prop_oneof![Just(None), Just(Some(8u64))],
    ) {
        let dir = fresh_dir("prop");
        let mut cfg = persistent_cfg(&dir, false);
        cfg.persist.as_mut().expect("persistent test config").snapshot_every = snapshot_every;
        let cut = cut.min(ops.len());
        let mut oracle = BTreeMap::new();

        let map = Arc::new(ShardedMap::with_config(cfg.clone()).expect("valid config"));
        let mut h = map.handle();
        for op in &ops[..cut] {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(h.insert(k, v), oracle.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(h.remove(k), oracle.remove(&k)),
            }
        }
        drop(h);
        drop(map);

        let (map, _) = ShardedMap::recover(&dir, cfg).expect("recovery failed");
        let mut h = map.handle();
        for op in &ops[cut..] {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(h.insert(k, v), oracle.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(h.remove(k), oracle.remove(&k)),
            }
        }
        let pairs = h.range_query(0, u64::MAX);
        let expect: Vec<(u64, u64)> = oracle.into_iter().collect();
        prop_assert_eq!(pairs, expect);
        drop(h);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
