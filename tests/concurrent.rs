//! Workspace-level concurrent scenarios: multiple structures under load at
//! once, range-query consistency, and failure-injected path churn.
//!
//! Every assertion is an interleaving-independent invariant, but the
//! execution itself is multi-threaded (and, for the chaos tests, driven by
//! the HTM emulator's seeded failure injection). The whole file is gated
//! behind the default-on `stress-tests` feature so a strictly
//! deterministic CI lane can opt out with `--no-default-features`.
#![cfg(feature = "stress-tests")]

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

mod common;
use common::StopOnDrop;

use threepath::abtree::{AbTree, AbTreeConfig};
use threepath::bst::{Bst, BstConfig};
use threepath::core::Strategy;
use threepath::htm::{HtmConfig, SplitMix64};

/// Two trees fed identical operation streams by concurrent threads (each
/// thread owns a disjoint key region, so both trees see the same per-key
/// linearization) must end with identical contents.
#[test]
fn mirrored_trees_converge() {
    let bst = Arc::new(Bst::with_config(BstConfig {
        strategy: Strategy::ThreePath,
        ..BstConfig::default()
    }));
    let ab = Arc::new(AbTree::with_config(AbTreeConfig {
        strategy: Strategy::ThreePath,
        ..AbTreeConfig::default()
    }));

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let bst = bst.clone();
            let ab = ab.clone();
            s.spawn(move || {
                let mut hb = bst.handle();
                let mut ha = ab.handle();
                let mut rng = SplitMix64::new(500 + t);
                let base = t * 1000; // disjoint key region per thread
                for i in 0..2500u64 {
                    let k = base + rng.next_below(400);
                    if rng.next_below(2) == 0 {
                        assert_eq!(hb.insert(k, i), ha.insert(k, i));
                    } else {
                        assert_eq!(hb.remove(k), ha.remove(k));
                    }
                }
            });
        }
    });

    assert_eq!(bst.collect(), ab.collect());
    bst.validate().unwrap();
    let shape = ab.validate().unwrap();
    assert_eq!(shape.tagged, 0);
    assert_eq!(shape.underfull, 0);
}

/// Range queries under concurrent updates must always observe a consistent
/// snapshot: we maintain the invariant that keys come in pairs (k, k+1)
/// inserted/removed atomically... since single ops aren't paired, instead
/// each updater inserts or removes *both* endpoints of a two-key couple in
/// a fixed order, and the checker asserts every observed couple is either
/// fully absent or has its left endpoint (the one written last) only with
/// its right endpoint present.
#[test]
fn range_queries_see_no_torn_couples() {
    // Couples: (2k, 2k+1). Updaters insert right endpoint first, then
    // left; removal removes left first, then right. Invariant for any
    // linearizable snapshot: left present => right present.
    let tree = Arc::new(Bst::with_config(BstConfig {
        strategy: Strategy::ThreePath,
        ..BstConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..2u64 {
            let tree = tree.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = tree.handle();
                let mut rng = SplitMix64::new(t + 1);
                while !stop.load(Ordering::Relaxed) {
                    let couple = rng.next_below(64);
                    let (l, r) = (couple * 2, couple * 2 + 1);
                    if rng.next_below(2) == 0 {
                        h.insert(r, couple);
                        h.insert(l, couple);
                    } else {
                        h.remove(l);
                        h.remove(r);
                    }
                }
            });
        }
        {
            let tree = tree.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let _stop_guard = StopOnDrop(stop.clone());
                let mut h = tree.handle();
                for _ in 0..400 {
                    let out = h.range_query(0, 128);
                    let keys: std::collections::BTreeSet<u64> =
                        out.iter().map(|(k, _)| *k).collect();
                    for k in &keys {
                        if k % 2 == 0 {
                            assert!(
                                keys.contains(&(k + 1)),
                                "torn couple: {k} present without {}",
                                k + 1
                            );
                        }
                    }
                }
            });
        }
    });
}

/// Heavy failure injection across every strategy: half of all hardware
/// transactions abort spuriously while threads hammer a small key range.
#[test]
fn chaos_all_strategies_keysum() {
    for strategy in Strategy::ALL {
        let tree = Arc::new(AbTree::with_config(AbTreeConfig {
            strategy,
            htm: HtmConfig::default().with_spurious(0.5).with_seed(9),
            ..AbTreeConfig::default()
        }));
        let delta = Arc::new(AtomicI64::new(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = tree.clone();
                let delta = delta.clone();
                s.spawn(move || {
                    let mut h = tree.handle();
                    let mut rng = SplitMix64::new(t * 31 + 7);
                    let mut local = 0i64;
                    for i in 0..1200u64 {
                        let k = rng.next_below(96);
                        if rng.next_below(2) == 0 {
                            if h.insert(k, i).is_none() {
                                local += k as i64;
                            }
                        } else if h.remove(k).is_some() {
                            local -= k as i64;
                        }
                    }
                    delta.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        let shape = tree.validate().unwrap();
        assert_eq!(
            shape.key_sum as i128,
            delta.load(Ordering::Relaxed) as i128,
            "strategy {strategy}"
        );
    }
}

/// The SNZI-based fallback indicator must behave identically to the
/// counter under path churn (spurious aborts force constant
/// arrive/depart traffic).
#[test]
fn snzi_indicator_keysum_stress() {
    for snzi in [false, true] {
        let tree = Arc::new(AbTree::with_config(AbTreeConfig {
            strategy: Strategy::ThreePath,
            htm: HtmConfig::default().with_spurious(0.6),
            snzi,
            ..AbTreeConfig::default()
        }));
        let delta = Arc::new(AtomicI64::new(0));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = tree.clone();
                let delta = delta.clone();
                s.spawn(move || {
                    let mut h = tree.handle();
                    let mut rng = SplitMix64::new(t * 7 + 100);
                    let mut local = 0i64;
                    for i in 0..1000u64 {
                        let k = rng.next_below(128);
                        if rng.next_below(2) == 0 {
                            if h.insert(k, i).is_none() {
                                local += k as i64;
                            }
                        } else if h.remove(k).is_some() {
                            local -= k as i64;
                        }
                    }
                    delta.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        let shape = tree.validate().unwrap();
        assert_eq!(
            shape.key_sum as i128,
            delta.load(Ordering::Relaxed) as i128,
            "snzi={snzi}"
        );
    }
}
