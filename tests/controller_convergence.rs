//! Cross-loop convergence: the attempt-budget prober, the read-escalation
//! prober, and HTM admission control all running on the same tree at the
//! same time, under abort storms and under calm, on both template
//! backends.
//!
//! The three loops share one decision engine
//! ([`threepath::core::ProbingController`]) but observe different signals;
//! this file pins down that they converge *together* without corrupting
//! the tree or each other's accounting. Budget scoring runs in
//! deterministic attempt mode (`wall_clock: false`) so the expected
//! decisions are interleaving-independent facts, not timing facts.
#![cfg(feature = "stress-tests")]

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use threepath::core::{
    BudgetConfig, PathLimits, ReadBoundConfig, Strategy, DEFAULT_READ_ATTEMPTS,
};
use threepath::htm::{HtmConfig, SplitMix64};

/// Mixed insert/remove/get hammer tracking the signed key-sum delta.
/// Returns the delta accumulated across all threads.
macro_rules! hammer {
    ($tree:expr, $threads:expr, $ops:expr, $space:expr) => {{
        let delta = Arc::new(AtomicI64::new(0));
        std::thread::scope(|s| {
            for t in 0..$threads as u64 {
                let tree = $tree.clone();
                let delta = delta.clone();
                s.spawn(move || {
                    let mut h = tree.handle();
                    let mut rng = SplitMix64::new(t * 611 + 29);
                    let mut local = 0i64;
                    for i in 0..$ops as u64 {
                        let k = rng.next_below($space);
                        match rng.next_below(4) {
                            0 | 1 => {
                                if h.insert(k, i).is_none() {
                                    local += k as i64;
                                }
                            }
                            2 => {
                                if h.remove(k).is_some() {
                                    local -= k as i64;
                                }
                            }
                            _ => {
                                h.get(k);
                            }
                        }
                    }
                    delta.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        delta.load(Ordering::Relaxed)
    }};
}

/// A total abort storm (every transaction attempt aborts) with all three
/// loops live and a one-thread admission window: every operation completes
/// through the fallback path, so attempt-mode scoring makes the floor
/// budget arm the provable winner (2 weighted attempts per op beat the
/// anchor's 36), the admission gate's window closes constantly, and the
/// read bound keeps probing its ladder. The budgets must settle on the
/// floor, the read bound must stay on its ladder, and the keysum and
/// structural oracles must hold throughout.
macro_rules! cross_loop_storm {
    ($name:ident, $tree:path, $cfg:path) => {
        #[test]
        fn $name() {
            let mut cfg = <$cfg>::default();
            cfg.strategy = Strategy::ThreePath;
            cfg.htm = HtmConfig::default().with_spurious(1.0).with_seed(3);
            cfg.budget = Some(BudgetConfig {
                epoch_ops: 128,
                wall_clock: false,
                ..BudgetConfig::default()
            });
            cfg.read_probe = Some(ReadBoundConfig::default());
            cfg.admission = Some(1);
            let tree = Arc::new(<$tree>::with_config(cfg));
            let delta = hammer!(tree, 4, 4000, 512);

            let b = tree.budgets().expect("budgeted tree");
            assert!(b.epochs() > 0, "the storm must have turned windows");
            assert_eq!(
                b.settled_limits(Strategy::ThreePath),
                PathLimits { fast: 1, middle: 1 },
                "under a total storm the floor arm provably wins"
            );
            assert!(
                ReadBoundConfig::default()
                    .ladder
                    .contains(&tree.read_attempts()),
                "the live read bound must be a ladder arm"
            );
            let shape = tree.validate().expect("structurally sound");
            assert_eq!(shape.key_sum as i128, delta as i128);
        }
    };
}

cross_loop_storm!(
    cross_loop_storm_converges_on_bst,
    threepath::bst::Bst,
    threepath::bst::BstConfig
);
cross_loop_storm!(
    cross_loop_storm_converges_on_abtree,
    threepath::abtree::AbTree,
    threepath::abtree::AbTreeConfig
);

/// The calm-side fixed point: with zero aborts injected every budget arm
/// ties, and the prober's `min_gain` hurdle must keep the incumbent anchor
/// rather than drift — the regression guard for the probing rewrite
/// (a threshold manager trivially stays put; a prober must *earn* staying
/// put through its hurdle). Reads never contend, so the read bound must
/// still be the paper default. Oracles as above.
///
/// Single-threaded on purpose: with concurrency, genuine HTM conflicts
/// inject abort noise and the tie is no longer exact (that regime belongs
/// to the storm test above). One thread makes every window identical, so
/// "ties keep the incumbent" is a deterministic fact.
macro_rules! cross_loop_calm {
    ($name:ident, $tree:path, $cfg:path) => {
        #[test]
        fn $name() {
            let mut cfg = <$cfg>::default();
            cfg.strategy = Strategy::ThreePath;
            cfg.htm = HtmConfig::default().with_seed(9);
            cfg.budget = Some(BudgetConfig {
                epoch_ops: 128,
                wall_clock: false,
                ..BudgetConfig::default()
            });
            cfg.read_probe = Some(ReadBoundConfig::default());
            cfg.admission = Some(2);
            let tree = Arc::new(<$tree>::with_config(cfg));
            let delta = hammer!(tree, 1, 16000, 512);

            let b = tree.budgets().expect("budgeted tree");
            assert!(b.epochs() > 0, "traffic must have turned windows");
            assert_eq!(
                b.settled_limits(Strategy::ThreePath),
                PathLimits::for_strategy(Strategy::ThreePath),
                "ties must keep the anchor incumbent (min_gain hurdle)"
            );
            assert_eq!(
                tree.read_attempts(),
                DEFAULT_READ_ATTEMPTS,
                "uncontended reads never move the escalation bound"
            );
            let shape = tree.validate().expect("structurally sound");
            assert_eq!(shape.key_sum as i128, delta as i128);
        }
    };
}

cross_loop_calm!(
    cross_loop_calm_keeps_the_anchor_on_bst,
    threepath::bst::Bst,
    threepath::bst::BstConfig
);
cross_loop_calm!(
    cross_loop_calm_keeps_the_anchor_on_abtree,
    threepath::abtree::AbTree,
    threepath::abtree::AbTreeConfig
);
