//! Concurrent correctness of the uninstrumented read path: wait-free
//! readers race updaters on both backends, under every strategy, with
//! injected spurious aborts — the regime where the old `run_op` read
//! wiring collapsed onto the serialized fallback paths and the new read
//! path must stay correct *without any synchronization*.
//!
//! Invariants (all interleaving-independent):
//!
//! * **Value determinism** — updaters only ever insert `value = f(key)`,
//!   so any lookup must return `None` or exactly `f(key)`: a torn read
//!   (mixing cells of a mid-flight in-place (a,b)-tree leaf mutation)
//!   would surface as a foreign value.
//! * **Key-sum** — updaters track their successful-insert/remove delta;
//!   the quiescent tree must agree.
//! * **Stats discipline** — reader handles complete on the read lane
//!   only; the sole exception is a validation-storm escalation, which is
//!   itself counted, so `fast + middle + fallback == escalations` exactly
//!   (and exactly zero on the BST, whose reads never validate at all).
//!
//! Multi-threaded, so the file rides in the default-on `stress-tests`
//! lane like `tests/concurrent.rs`.
#![cfg(feature = "stress-tests")]

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

mod common;
use common::StopOnDrop;

use threepath::abtree::{AbTree, AbTreeConfig};
use threepath::bst::{Bst, BstConfig};
use threepath::core::{PathKind, PathStats, Strategy};
use threepath::htm::{HtmConfig, SplitMix64};
use threepath::sharded::{RouterKind, ShardBackend, ShardTree, ShardedConfig, ShardedMap};

const KEY_RANGE: u64 = 256;

fn expected_value(k: u64) -> u64 {
    k.wrapping_mul(3).wrapping_add(1)
}

/// Non-read-lane completions must be exactly the escalations (zero for
/// the BST backend, whose reads never escalate).
fn assert_reader_stats(stats: &PathStats, backend: ShardBackend) {
    assert!(
        stats.completed(PathKind::Read) > 0,
        "{backend}: reader never used the read lane"
    );
    let non_read: u64 = [PathKind::Fast, PathKind::Middle, PathKind::Fallback]
        .iter()
        .map(|&p| stats.completed(p))
        .sum();
    assert_eq!(
        non_read,
        stats.read_escalations(),
        "{backend}: reads completed off the read lane without an escalation"
    );
    if backend == ShardBackend::Bst {
        assert_eq!(stats.read_escalations(), 0, "BST reads never validate");
        assert_eq!(stats.read_retries(), 0);
    }
}

/// Readers race updaters on one tree of `backend` under `strategy` with
/// spurious aborts injected; returns nothing, asserts everything.
fn race(backend: ShardBackend, strategy: Strategy) {
    let tree = ShardTree::build(&ShardedConfig {
        backend,
        strategy,
        key_space: KEY_RANGE,
        htm: HtmConfig::default().with_spurious(0.4).with_seed(11),
        ..ShardedConfig::default()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let delta = Arc::new(AtomicI64::new(0));
    std::thread::scope(|s| {
        let _guard = StopOnDrop(stop.clone());
        // Updaters: value-deterministic 50/50 insert/remove churn.
        let mut joins = Vec::new();
        for t in 0..3u64 {
            let tree = tree.clone();
            let delta = delta.clone();
            joins.push(s.spawn(move || {
                let mut h = tree.handle();
                let mut rng = SplitMix64::new(0xD0_0D + t);
                let mut local = 0i64;
                for _ in 0..3000u64 {
                    let k = rng.next_below(KEY_RANGE);
                    if rng.next_below(2) == 0 {
                        if h.insert(k, expected_value(k)).is_none() {
                            local += k as i64;
                        }
                    } else if h.remove(k).is_some() {
                        local -= k as i64;
                    }
                }
                delta.fetch_add(local, Ordering::Relaxed);
            }));
        }
        // Readers: uninstrumented lookups racing the churn.
        for t in 0..2u64 {
            let tree = tree.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = tree.handle();
                let mut rng = SplitMix64::new(0xBEEF + t);
                let mut reads = 0u64;
                // Keep reading for a minimum op count even after the
                // updaters stop (in release mode they can finish before
                // a reader is ever scheduled).
                while !stop.load(Ordering::Relaxed) || reads < 500 {
                    let k = rng.next_below(KEY_RANGE);
                    if let Some(v) = h.get(k) {
                        assert_eq!(
                            v,
                            expected_value(k),
                            "{backend}/{strategy}: torn or foreign value for key {k}"
                        );
                    }
                    reads += 1;
                }
                assert_reader_stats(h.stats(), backend);
            });
        }
        for j in joins {
            j.join().unwrap();
        }
    });
    tree.validate().unwrap();
    assert_eq!(
        tree.key_sum() as i128,
        delta.load(Ordering::Relaxed) as i128,
        "{backend}/{strategy}: keysum mismatch"
    );
}

#[test]
fn readers_race_updaters_bst_all_strategies() {
    for strategy in Strategy::ALL {
        race(ShardBackend::Bst, strategy);
    }
}

#[test]
fn readers_race_updaters_abtree_all_strategies() {
    for strategy in Strategy::ALL {
        race(ShardBackend::AbTree, strategy);
    }
}

/// `first`/`last` ride the read path too: racing updates, the returned
/// pair must always be value-consistent.
#[test]
fn extremes_race_updaters_on_both_backends() {
    let bst = Arc::new(Bst::with_config(BstConfig {
        htm: HtmConfig::default().with_spurious(0.3),
        ..BstConfig::default()
    }));
    let ab = Arc::new(AbTree::with_config(AbTreeConfig {
        htm: HtmConfig::default().with_spurious(0.3),
        ..AbTreeConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let _guard = StopOnDrop(stop.clone());
        let mut joins = Vec::new();
        for t in 0..2u64 {
            let bst = bst.clone();
            let ab = ab.clone();
            joins.push(s.spawn(move || {
                let mut hb = bst.handle();
                let mut ha = ab.handle();
                let mut rng = SplitMix64::new(77 + t);
                for _ in 0..4000u64 {
                    let k = rng.next_below(KEY_RANGE);
                    if rng.next_below(2) == 0 {
                        hb.insert(k, expected_value(k));
                        ha.insert(k, expected_value(k));
                    } else {
                        hb.remove(k);
                        ha.remove(k);
                    }
                }
            }));
        }
        {
            let bst = bst.clone();
            let ab = ab.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut hb = bst.handle();
                let mut ha = ab.handle();
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) || rounds < 200 {
                    rounds += 1;
                    for (k, v) in [hb.first(), hb.last(), ha.first(), ha.last()]
                        .into_iter()
                        .flatten()
                    {
                        assert_eq!(v, expected_value(k), "torn extreme ({k}, {v})");
                        assert!(k < KEY_RANGE);
                    }
                }
                // Both handles only ever read: all on the read lane
                // modulo counted escalations.
                assert_reader_stats(hb.stats(), ShardBackend::Bst);
                assert_reader_stats(ha.stats(), ShardBackend::AbTree);
            });
        }
        for j in joins {
            j.join().unwrap();
        }
    });
    bst.validate().unwrap();
    ab.validate().unwrap();
}

/// The sharded front end routes `get` straight to the owning shard's
/// read path: hash-routed readers race updaters across shards and the
/// merged handle statistics show read-lane traffic only.
#[test]
fn sharded_readers_race_updaters() {
    for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
        let map = Arc::new(
            ShardedMap::with_config(ShardedConfig {
                shards: 4,
                backend,
                key_space: KEY_RANGE,
                router: RouterKind::Hash,
                htm: HtmConfig::default().with_spurious(0.35),
                ..ShardedConfig::default()
            })
            .unwrap(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let delta = Arc::new(AtomicI64::new(0));
        std::thread::scope(|s| {
            let _guard = StopOnDrop(stop.clone());
            let mut joins = Vec::new();
            for t in 0..3u64 {
                let map = map.clone();
                let delta = delta.clone();
                joins.push(s.spawn(move || {
                    let mut h = map.handle();
                    let mut rng = SplitMix64::new(0xACE + t);
                    let mut local = 0i64;
                    for _ in 0..2500u64 {
                        let k = rng.next_below(KEY_RANGE);
                        if rng.next_below(2) == 0 {
                            if h.insert(k, expected_value(k)).is_none() {
                                local += k as i64;
                            }
                        } else if h.remove(k).is_some() {
                            local -= k as i64;
                        }
                    }
                    delta.fetch_add(local, Ordering::Relaxed);
                }));
            }
            {
                let map = map.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut h = map.handle();
                    let mut rng = SplitMix64::new(0xF00);
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Relaxed) || reads < 500 {
                        let k = rng.next_below(KEY_RANGE);
                        if let Some(v) = h.get(k) {
                            assert_eq!(v, expected_value(k), "{backend}: torn sharded read");
                        }
                        reads += 1;
                    }
                    assert_reader_stats(&h.stats(), backend);
                });
            }
            for j in joins {
                j.join().unwrap();
            }
        });
        map.validate().unwrap();
        assert_eq!(
            map.key_sum() as i128,
            delta.load(Ordering::Relaxed) as i128,
            "{backend}: sharded keysum mismatch"
        );
    }
}

/// Steady state, no contention: reads execute zero HTM transactions on
/// both backends under both TLE and 3-path, even while spurious aborts
/// doom every transaction the tree might have tried — the acceptance
/// criterion of the read-path PR.
#[test]
fn steady_state_reads_execute_zero_transactions() {
    for backend in [ShardBackend::Bst, ShardBackend::AbTree] {
        for strategy in [Strategy::ThreePath, Strategy::Tle] {
            let tree = ShardTree::build(&ShardedConfig {
                backend,
                strategy,
                key_space: KEY_RANGE,
                htm: HtmConfig::default().with_spurious(0.95),
                ..ShardedConfig::default()
            });
            {
                let mut w = tree.handle();
                for k in 0..KEY_RANGE / 2 {
                    w.insert(k * 2, expected_value(k * 2));
                }
            }
            let mut r = tree.handle();
            let mut rng = SplitMix64::new(3);
            for _ in 0..2000 {
                let k = rng.next_below(KEY_RANGE);
                let got = r.get(k);
                if k % 2 == 0 {
                    assert_eq!(got, Some(expected_value(k)));
                } else {
                    assert_eq!(got, None);
                }
            }
            let st = r.stats();
            assert_eq!(st.completed(PathKind::Read), 2000, "{backend}/{strategy}");
            for p in [PathKind::Fast, PathKind::Middle, PathKind::Fallback] {
                assert_eq!(st.completed(p), 0, "{backend}/{strategy}: {p} used");
                assert_eq!(st.commits(p), 0);
                assert_eq!(st.aborts(p).total(), 0);
            }
            assert_eq!(st.read_retries(), 0, "quiescent reads never retry");
            assert_eq!(st.read_escalations(), 0);
        }
    }
}
