//! # threepath
//!
//! Facade crate for the `threepath` workspace — a reproduction of
//! Trevor Brown, *"A Template for Implementing Fast Lock-free Trees Using
//! HTM"* (PODC 2017). See the repository README for an overview.

pub use threepath_abtree as abtree;
pub use threepath_bst as bst;
pub use threepath_core as core;
pub use threepath_htm as htm;
pub use threepath_hybridnorec as hybridnorec;
pub use threepath_kcas as kcas;
pub use threepath_llxscx as llxscx;
pub use threepath_persist as persist;
pub use threepath_rcu as rcu;
pub use threepath_reclaim as reclaim;
pub use threepath_server as server;
pub use threepath_sharded as sharded;
pub use threepath_workload as workload;
